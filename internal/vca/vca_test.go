package vca

import (
	"testing"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// rig is a full transmitter+receiver pair wired like the prototype.
type rig struct {
	sched *sim.Scheduler
	ring  *ring.Ring
	txK   *kernel.Kernel
	rxK   *kernel.Kernel
	dev   *Device
	tx    *TxDriver
	rx    *RxDriver
	recv  *ctmsp.Receiver
}

func newRig(t *testing.T, txCfg TxConfig, rxCfg RxConfig) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())

	mkHost := func(name string, trCfg tradapter.Config) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 11)
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, trCfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	txK, txDrv := mkHost("tx", tradapter.DefaultConfig())
	// Only the transmitter's DMA buffers live in IO Channel Memory.
	rxTrCfg := tradapter.DefaultConfig()
	rxTrCfg.DMABufferKind = rtpc.SystemMemory
	rxK, rxDrv := mkHost("rx", rxTrCfg)

	conn, err := ctmsp.Dial(txK, txDrv, rxDrv.Station().Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(txK)
	txDriver, err := NewTxDriver(txK, dev, conn, txCfg)
	if err != nil {
		t.Fatal(err)
	}
	recv := &ctmsp.Receiver{}
	rxDriver := NewRxDriver(rxK, rxDrv, recv, rxCfg)
	return &rig{sched: sched, ring: r, txK: txK, rxK: rxK, dev: dev, tx: txDriver, rx: rxDriver, recv: recv}
}

func TestVCAInterruptSourceIsExact(t *testing.T) {
	sched := sim.NewScheduler()
	m := rtpc.NewMachine(sched, "tx", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)
	dev := NewDevice(k)
	var irqs []sim.Time
	dev.OnIRQ = func(_ uint64, at sim.Time) { irqs = append(irqs, at) }
	dev.Start()
	sched.RunUntil(120 * sim.Millisecond)
	dev.Stop()
	if len(irqs) != 10 {
		t.Fatalf("want 10 interrupts in 120 ms, got %d", len(irqs))
	}
	for i := 1; i < len(irqs); i++ {
		if irqs[i]-irqs[i-1] != Interval {
			t.Fatalf("IRQ period must be exactly 12 ms (the paper verified ±500 ns): %v", irqs[i]-irqs[i-1])
		}
	}
}

func TestStreamEndToEnd(t *testing.T) {
	r := newRig(t, DefaultTxConfig(), DefaultRxConfigB())
	r.dev.Start()
	r.sched.RunUntil(2 * sim.Second)
	r.dev.Stop()
	r.sched.Run()

	st := r.recv.Stats()
	// 2 s / 12 ms ≈ 166 packets.
	if st.InOrder < 160 || st.Lost != 0 || st.Duplicates != 0 {
		t.Fatalf("stream should be complete and ordered: %+v", st)
	}
	if r.tx.Stats().MbufDrops != 0 {
		t.Fatalf("no mbuf drops expected: %+v", r.tx.Stats())
	}
	// 2000-byte packets every 12 ms ≈ 166.7 KB/s, the paper's rate.
	rate := float64(st.InOrder) * 2000 / 2
	if rate < 150_000 {
		t.Fatalf("transport rate %f B/s below the CTMS requirement", rate)
	}
}

func TestMeasurementPointsOrdering(t *testing.T) {
	r := newRig(t, DefaultTxConfig(), DefaultRxConfigA())
	type rec struct{ p1, p2, p3, p4 sim.Time }
	recs := map[uint64]*rec{}
	get := func(n uint64) *rec {
		if recs[n] == nil {
			recs[n] = &rec{}
		}
		return recs[n]
	}
	r.dev.OnIRQ = func(tick uint64, at sim.Time) { get(tick).p1 = at }
	r.tx.OnHandlerEntry = func(tick uint64, at sim.Time) { get(tick).p2 = at }
	r.tx.OnPreTransmit = func(num uint32, at sim.Time) { get(uint64(num)).p3 = at }
	r.rx.OnClassified = func(h ctmsp.Header, at sim.Time) { get(uint64(h.PacketNum)).p4 = at }

	r.dev.Start()
	r.sched.RunUntil(500 * sim.Millisecond)
	r.dev.Stop()
	r.sched.Run()

	n := 0
	for _, rc := range recs {
		if rc.p4 == 0 {
			continue // tail packet still in flight at shutdown
		}
		n++
		if !(rc.p1 < rc.p2 && rc.p2 < rc.p3 && rc.p3 < rc.p4) {
			t.Fatalf("probe points out of order: %+v", rc)
		}
		// Histogram 6 quantity: entry→pre-transmit ≈ 2.6 ms on an idle
		// transmitter.
		h6 := (rc.p3 - rc.p2).Microseconds()
		if h6 < 2300 || h6 > 3000 {
			t.Fatalf("handler→pre-transmit %v µs, want ≈2600", h6)
		}
		// Histogram 7 quantity: pre-transmit→classified ≈ 10.74 ms.
		h7 := (rc.p4 - rc.p3).Microseconds()
		if h7 < 10500 || h7 > 11300 {
			t.Fatalf("tx→rx %v µs, want ≈10740–10900", h7)
		}
	}
	if n < 30 {
		t.Fatalf("too few complete packets measured: %d", n)
	}
}

func TestCopyVCAToMbufsAddsLatency(t *testing.T) {
	run := func(copyFromDev bool) float64 {
		cfg := DefaultTxConfig()
		cfg.CopyVCAToMbufs = copyFromDev
		r := newRig(t, cfg, DefaultRxConfigA())
		var sum float64
		var n int
		var entries = map[uint64]sim.Time{}
		r.tx.OnHandlerEntry = func(tick uint64, at sim.Time) { entries[tick] = at }
		r.tx.OnPreTransmit = func(num uint32, at sim.Time) {
			if e, ok := entries[uint64(num)]; ok {
				sum += (at - e).Microseconds()
				n++
			}
		}
		r.dev.Start()
		r.sched.RunUntil(300 * sim.Millisecond)
		r.dev.Stop()
		r.sched.Run()
		return sum / float64(n)
	}
	direct := run(false)
	copied := run(true)
	// The byte-wide device copy of ≈2 KB at 2 µs/byte should add ≈4 ms.
	if copied-direct < 3000 {
		t.Fatalf("device copy should add ≈4000 µs: direct=%.0f copied=%.0f", direct, copied)
	}
}

func TestRxExamineInPlaceSkipsCopy(t *testing.T) {
	run := func(cfg RxConfig) sim.Time {
		r := newRig(t, DefaultTxConfig(), cfg)
		r.dev.Start()
		r.sched.RunUntil(500 * sim.Millisecond)
		r.dev.Stop()
		r.sched.Run()
		return r.rxK.CPU().Stats().BusyTime
	}
	full := run(DefaultRxConfigB())
	inPlace := run(RxConfig{CopyToMbufs: false, CopyToDevice: false, ExamineCost: 40 * sim.Microsecond})
	if inPlace >= full {
		t.Fatalf("in-place examination should use less CPU: %v vs %v", inPlace, full)
	}
}

func TestMaxOutstandingDropsExcess(t *testing.T) {
	cfg := DefaultTxConfig()
	r := newRig(t, cfg, DefaultRxConfigA())
	if _, err := r.txK.Ioctl("vca0", "set-max-outstanding", 1); err != nil {
		t.Fatal(err)
	}
	// Stall the ring so packets cannot drain: repeated purges.
	for i := 0; i < 20; i++ {
		r.sched.At(sim.Time(i)*9*sim.Millisecond, "purge", r.ring.Purge)
	}
	r.dev.Start()
	r.sched.RunUntil(300 * sim.Millisecond)
	r.dev.Stop()
	r.sched.Run()
	if r.tx.Stats().QueueDrops == 0 {
		t.Fatal("flow control should have dropped packets while the ring was purging")
	}
}

func TestVCAIoctls(t *testing.T) {
	r := newRig(t, DefaultTxConfig(), DefaultRxConfigA())
	if _, err := r.txK.Ioctl("vca0", "get-stats", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.txK.Ioctl("vca0", "set-max-outstanding", "x"); err == nil {
		t.Fatal("wrong arg type must error")
	}
	if _, err := r.txK.Ioctl("vca0", "bogus", nil); err == nil {
		t.Fatal("unknown ioctl must error")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	sched := sim.NewScheduler()
	k := kernel.New(rtpc.NewMachine(sched, "m", rtpc.DefaultCostModel(), 1))
	dev := NewDevice(k)
	dev.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double start must panic")
		}
	}()
	dev.Start()
}

func TestPurgeLossShowsAsGap(t *testing.T) {
	r := newRig(t, DefaultTxConfig(), DefaultRxConfigA())
	r.dev.Start()
	// Purge while a CTMSP frame is on the wire, deterministically.
	purges := 0
	var poll func()
	poll = func() {
		if purges >= 1 {
			return
		}
		if f := r.ring.Current(); f != nil && f.Kind == ring.LLC {
			purges++
			r.ring.Purge()
			return
		}
		r.sched.After(200*sim.Microsecond, "poll", poll)
	}
	r.sched.After(50*sim.Millisecond, "arm", poll)
	r.sched.RunUntil(2 * sim.Second)
	r.dev.Stop()
	r.sched.Run()
	st := r.recv.Stats()
	if st.Lost != 1 || st.Gaps != 1 {
		t.Fatalf("one purge during a frame should lose exactly one packet: %+v", st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("no duplicates expected without purge-interrupt: %+v", st)
	}
}
