// Package topo scales the paper's single 4 Mbit/s Token Ring to a
// campus internetwork: N rings joined by store-and-forward bridges
// (internal/router halves), carrying cross-ring CTMSP sessions whose
// admission reserves bandwidth on every hop of the path — the CDTP-style
// chain transfer the ROADMAP's "millions of users" question needs.
//
// The package is also the repo's parallel simulation engine. Each ring —
// with its stations, background load, bridge halves and stream machinery
// — is one shard owning a private sim.Scheduler, and shards advance in
// conservative lookahead windows bounded by the minimum bridge latency:
// rings interact only through store-and-forward forwarding, whose latency
// is exactly the lookahead a conservative parallel discrete-event engine
// needs. Cross-ring frames travel through single-writer inbox queues
// drained at window boundaries, so the event order on every shard is a
// pure function of the Spec — bit-identical at any worker count, with
// the one-worker run as the serial oracle (DESIGN.md §9).
package topo

import (
	"fmt"

	"repro/internal/ctmsp"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Defaults for the zero-valued Spec knobs.
const (
	// DefaultLinkLatency is a bridge's store-and-forward hand-off time:
	// the switch decision plus the frame copy across the backplane to the
	// egress adapter. It is deliberately larger than the bare
	// router.DefaultSwitchCost floor — the window the engine may run
	// shards ahead by is the minimum link latency, and the switch cost
	// alone would mean a barrier every 180 µs of simulated time.
	DefaultLinkLatency = 2 * sim.Millisecond
	// defaultPopulation matches internal/core's campus-ring population so
	// per-station repeat latency is comparable across runners.
	defaultPopulation = 64
	// defaultInsertionPurges is the paper's "on the order of 10"
	// back-to-back purges per station insertion.
	defaultInsertionPurges = 10
	// maxOutstanding bounds packets a stream may queue in its Token Ring
	// driver, as in the session layer.
	maxOutstanding = 8
)

// LinkSpec is one internetwork edge: a split bridge joining rings A and B.
type LinkSpec struct {
	A, B int
	// Latency is the bridge's store-and-forward hand-off time in each
	// direction (0 = DefaultLinkLatency). It must be at least
	// router.DefaultSwitchCost: the engine's lookahead window is the
	// minimum latency over all links, and the proof that windowed
	// execution is exact needs every link to respect that bound.
	Latency sim.Time
}

// StreamSpec describes one CTMSP stream between two rings (SrcRing may
// equal DstRing for a local control stream). The stream shape — name,
// packet size, interval, admission class — is the session layer's
// spec, embedded rather than duplicated so the two layers cannot
// drift; topo adds only the ring endpoints. The promoted OfferedBits
// is the per-ring bandwidth the stream reserves on every hop of its
// path.
type StreamSpec struct {
	session.StreamSpec
	SrcRing int
	DstRing int
}

// SessionSpec returns the embedded session-layer stream shape — the
// conversion shim for callers that held the old duplicated struct.
func (s StreamSpec) SessionSpec() session.StreamSpec { return s.StreamSpec }

// BurstSpec injects Count back-to-back frames from a dedicated host on
// SrcRing to a sink on DstRing — cross-ring pressure for overflow tests:
// a burst bigger than the source's mbuf pool or the bridge's egress queue
// exercises every drop path deterministically.
type BurstSpec struct {
	SrcRing, DstRing int
	At               sim.Time
	Count            int
	PacketBytes      int
	// Gap spaces the burst's frames (0 = all queued at the same instant).
	Gap sim.Time
}

// InsertionSpec forces a station insertion (a burst of back-to-back Ring
// Purges) on one ring at a given time.
type InsertionSpec struct {
	Ring   int
	At     sim.Time
	Purges int // 0 = the paper's ~10
}

// Spec describes one internetwork run. The Spec is the complete input:
// two Builds from equal Specs produce bit-identical Results at any
// worker count.
type Spec struct {
	Name     string
	Seed     int64
	Duration sim.Time

	// Rings is the number of Token Rings (shards).
	Rings int
	// RingBitRate overrides the 4 Mbit/s ring (0 = the paper's rate).
	RingBitRate int64
	// UtilizationCap is the per-ring admission cap
	// (0 = session.DefaultUtilizationCap).
	UtilizationCap float64
	// BackgroundUtil is each ring's offered background load fraction.
	BackgroundUtil float64
	// PopulationStations pads each ring's station count (0 = 64).
	PopulationStations int
	// PlayoutPrebuffer delays each stream's playback
	// (0 = session.DefaultPrebuffer; multi-hop paths want more).
	PlayoutPrebuffer sim.Time

	Links      []LinkSpec
	Streams    []StreamSpec
	Bursts     []BurstSpec
	Insertions []InsertionSpec

	// Population, when non-nil, adds a statistical stream population on
	// top of Streams. Unlike the session layer — where arrivals are
	// admitted live as they fire — topo admission happens exactly once,
	// while Build constructs the machinery (the conservative-window
	// engine has no cross-shard admission channel at run time), so the
	// population is expanded at Build into a static census: the streams
	// alive at the run's midpoint, each title Zipf-drawn and homed on
	// ring title mod Rings, each source ring drawn uniformly (falling
	// back to a local stream when no path exists). The expansion is a
	// pure function of (Seed, Population, Rings), so the serial-vs-shard
	// fingerprint oracle covers population runs unchanged.
	Population *workload.PopulationSpec
}

func (s Spec) withDefaults() Spec {
	if s.RingBitRate == 0 {
		s.RingBitRate = ring.DefaultConfig().BitRate
	}
	if s.UtilizationCap == 0 {
		s.UtilizationCap = session.DefaultUtilizationCap
	}
	if s.PopulationStations == 0 {
		s.PopulationStations = defaultPopulation
	}
	if s.PlayoutPrebuffer == 0 {
		s.PlayoutPrebuffer = session.DefaultPrebuffer
	}
	links := make([]LinkSpec, len(s.Links))
	copy(links, s.Links)
	for i := range links {
		if links[i].Latency == 0 {
			links[i].Latency = DefaultLinkLatency
		}
	}
	s.Links = links
	return s
}

// Validate reports specification mistakes early, before any machinery is
// built.
func (s Spec) Validate() error {
	_, err := s.validateCompiled()
	return err
}

// validateCompiled is Validate plus the compiled route table the checks
// ran against, so Build pays for the all-pairs compilation exactly once
// and routes streams through the very table that validated them.
func (s Spec) validateCompiled() (*routeTable, error) {
	switch {
	case s.Duration <= 0:
		return nil, fmt.Errorf("topo: duration must be positive")
	case s.Rings < 1:
		return nil, fmt.Errorf("topo: need at least one ring, got %d", s.Rings)
	case s.UtilizationCap < 0 || s.UtilizationCap > 1:
		return nil, fmt.Errorf("topo: utilization cap %v out of [0,1]", s.UtilizationCap)
	case s.BackgroundUtil < 0 || s.BackgroundUtil >= 1:
		return nil, fmt.Errorf("topo: background utilization %v out of [0,1)", s.BackgroundUtil)
	}
	for i, l := range s.Links {
		switch {
		case l.A < 0 || l.A >= s.Rings || l.B < 0 || l.B >= s.Rings:
			return nil, fmt.Errorf("topo: link %d joins rings %d-%d, outside 0..%d", i, l.A, l.B, s.Rings-1)
		case l.A == l.B:
			return nil, fmt.Errorf("topo: link %d joins ring %d to itself", i, l.A)
		case l.Latency != 0 && l.Latency < router.DefaultSwitchCost:
			return nil, fmt.Errorf("topo: link %d (rings %d-%d) latency %v is below the switch cost %v the lookahead bound needs",
				i, l.A, l.B, l.Latency, sim.Time(router.DefaultSwitchCost))
		}
	}
	rt := compileRoutes(s.Rings, s.Links)
	for i, st := range s.Streams {
		switch {
		case st.SrcRing < 0 || st.SrcRing >= s.Rings || st.DstRing < 0 || st.DstRing >= s.Rings:
			return nil, fmt.Errorf("topo: stream %d (%s) uses rings %d→%d, outside 0..%d",
				i, st.Name, st.SrcRing, st.DstRing, s.Rings-1)
		case st.PacketBytes <= ctmsp.HeaderSize || st.PacketBytes > 4000:
			return nil, fmt.Errorf("topo: stream %d (%s): packet size %d out of range", i, st.Name, st.PacketBytes)
		case st.Interval <= 0:
			return nil, fmt.Errorf("topo: stream %d (%s): interval must be positive", i, st.Name)
		case st.Class < session.ClassBackground || st.Class > session.ClassInteractive:
			return nil, fmt.Errorf("topo: stream %d (%s): unknown class %d", i, st.Name, int(st.Class))
		case !rt.reachable(st.SrcRing, st.DstRing):
			return nil, fmt.Errorf("topo: stream %d (%s): no path from ring %d to ring %d (ring %d %s)",
				i, st.Name, st.SrcRing, st.DstRing, st.SrcRing, rt.describeComponent(st.SrcRing))
		}
	}
	for i, b := range s.Bursts {
		switch {
		case b.SrcRing < 0 || b.SrcRing >= s.Rings || b.DstRing < 0 || b.DstRing >= s.Rings:
			return nil, fmt.Errorf("topo: burst %d uses rings %d→%d, outside 0..%d", i, b.SrcRing, b.DstRing, s.Rings-1)
		case b.Count <= 0 || b.PacketBytes <= 0:
			return nil, fmt.Errorf("topo: burst %d needs positive count and size", i)
		case b.At < 0 || b.At > s.Duration:
			return nil, fmt.Errorf("topo: burst %d at %v outside the run", i, b.At)
		case !rt.reachable(b.SrcRing, b.DstRing):
			return nil, fmt.Errorf("topo: burst %d: no path from ring %d to ring %d (ring %d %s)",
				i, b.SrcRing, b.DstRing, b.SrcRing, rt.describeComponent(b.SrcRing))
		}
	}
	for i, ins := range s.Insertions {
		if ins.Ring < 0 || ins.Ring >= s.Rings {
			return nil, fmt.Errorf("topo: insertion %d on ring %d, outside 0..%d", i, ins.Ring, s.Rings-1)
		}
		if ins.At < 0 || ins.At > s.Duration {
			return nil, fmt.Errorf("topo: insertion %d at %v outside the run", i, ins.At)
		}
	}
	if s.Population != nil {
		if err := s.Population.Validate(); err != nil {
			return nil, fmt.Errorf("topo: %w", err)
		}
		// The workload layer only requires positive packet sizes; the
		// expanded streams must also fit topo's CTMSP frame bounds.
		for i, cc := range s.Population.WithDefaults().Classes {
			if cc.PacketBytes <= ctmsp.HeaderSize || cc.PacketBytes > 4000 {
				return nil, fmt.Errorf("topo: population class %d (%s): packet size %d out of (%d,4000]",
					i, cc.Name, cc.PacketBytes, ctmsp.HeaderSize)
			}
		}
	}
	return rt, nil
}

// expandPopulation compiles the spec's population and returns the static
// census Build admits: every compiled arrival alive at the run midpoint,
// as full StreamSpecs. Draws come from a dedicated salt-mixed seed, so
// the census depends only on (Seed, Population, Rings, Duration).
func expandPopulation(s Spec, rt *routeTable) []StreamSpec {
	pop := s.Population.WithDefaults()
	rng := sim.NewRNG(mixSeed(s.Seed, saltPopulation))
	census := sim.Time(s.Duration / 2)
	var out []StreamSpec
	for _, a := range pop.Compile(rng, s.Duration) {
		if a.At > census || a.DepartAt <= census {
			continue
		}
		cc := pop.Classes[a.Class]
		dst := a.Title % s.Rings
		src := rng.Intn(s.Rings)
		if !rt.reachable(src, dst) {
			// No bridge path from the drawn viewer to the title's home
			// ring: model a local replica instead of dropping the viewer.
			dst = src
		}
		out = append(out, StreamSpec{
			StreamSpec: session.StreamSpec{
				Name:        fmt.Sprintf("pop-%03d-%s", len(out), cc.Name),
				PacketBytes: cc.PacketBytes,
				Interval:    cc.Interval,
				Class:       session.Class(cc.Priority),
			},
			SrcRing: src,
			DstRing: dst,
		})
	}
	return out
}

// mixSeed derives an independent seed per component so nearby indices get
// unrelated RNG streams (splitmix64-style finalizer, as core.SweepSeed
// does for sweep points and session does for stream hosts).
func mixSeed(base int64, salt uint64) int64 {
	h := uint64(base) + salt*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int64(h)
}

// Salt spaces for mixSeed, keeping component seeds disjoint.
const (
	saltRing   = 0x0100_0000
	saltHalf   = 0x0200_0000
	saltStream = 0x0400_0000
	saltBurst  = 0x0800_0000
	// saltPopulation seeds the population census expansion.
	saltPopulation = 0x1000_0000
)
