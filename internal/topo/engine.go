package topo

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/router"
	"repro/internal/sim"
)

// crossMsg is one frame in flight between shards. egress and dir are
// fixed at Build time; deliverAt is the sender's clock plus the link
// latency, so within one inbox deliverAt is nondecreasing (the sender's
// clock is monotone and the latency constant).
type crossMsg struct {
	deliverAt sim.Time
	dir       int    // global link-direction index: merge tiebreak
	seq       uint64 // send order within the direction: final tiebreak
	egress    *router.Half
	frame     router.Forwarded
}

// inbox is the single-writer queue for one link direction. Only the
// source shard's worker appends (during its window) and only the
// destination shard's worker drains (at the next window boundary); the
// conservative window guarantees no append ever races with a drain that
// could take it — a message sent during window k+1 cannot be due before
// window k+2 (DESIGN.md §9). The mutex is what makes that hand-off
// visible to the race detector and orders the racing-but-ineligible
// appends against the drain's slice surgery.
type inbox struct {
	dir    int
	egress *router.Half

	mu   sync.Mutex
	msgs []crossMsg // guarded by mu
	next uint64     // guarded by mu
	sent uint64     // guarded by mu
}

func newInbox(dir int, egress *router.Half) *inbox {
	return &inbox{dir: dir, egress: egress}
}

// put appends a message; called from the sender shard's worker.
//
//ctmsvet:crossing push single-writer enqueue: only the sending half's worker calls put, and deliverAt carries now+latency past the window floor
func (b *inbox) put(deliverAt sim.Time, f router.Forwarded) {
	b.mu.Lock()
	b.msgs = append(b.msgs, crossMsg{
		deliverAt: deliverAt,
		dir:       b.dir,
		seq:       b.next,
		egress:    b.egress,
		frame:     f,
	})
	b.next++
	b.sent++
	b.mu.Unlock()
}

// drainDue appends every message with deliverAt ≤ bound to into and
// removes them from the queue. deliverAt is nondecreasing within an
// inbox, so the due messages are exactly a prefix.
//
//ctmsvet:crossing drain receiver-side dequeue: runs only in the barrier step between windows, when the sending half's window is sealed
func (b *inbox) drainDue(bound sim.Time, into []crossMsg) []crossMsg {
	b.mu.Lock()
	due := 0
	for due < len(b.msgs) && b.msgs[due].deliverAt <= bound {
		due++
	}
	if due > 0 {
		into = append(into, b.msgs[:due]...)
		rest := copy(b.msgs, b.msgs[due:])
		for i := rest; i < len(b.msgs); i++ {
			b.msgs[i] = crossMsg{}
		}
		b.msgs = b.msgs[:rest]
	}
	b.mu.Unlock()
	return into
}

// leftover reports messages still queued (in flight when the run ended).
//
//ctmsvet:crossing peek end-of-run accounting: reads a count after all workers have joined, moves no messages
func (b *inbox) leftover() int {
	b.mu.Lock()
	l := len(b.msgs)
	b.mu.Unlock()
	return l
}

// barrier is a reusable cyclic barrier: await blocks until all n workers
// arrive, then releases the generation together.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int    // guarded by mu
	gen     uint64 // guarded by mu
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// drainInboxes moves every cross-ring frame due by bound out of this
// shard's inboxes and schedules its injection at its arrival time. The
// merge order — (deliverAt, direction index, send seq) — is a total
// order on messages, so the scheduler sees identical (at, seq) insertions
// regardless of how many workers the run uses.
func (s *shard) drainInboxes(bound sim.Time) {
	due := s.scratch[:0]
	for _, box := range s.in {
		due = box.drainDue(bound, due)
	}
	if len(due) > 0 {
		sort.Slice(due, func(i, j int) bool {
			a, b := due[i], due[j]
			if a.deliverAt != b.deliverAt {
				return a.deliverAt < b.deliverAt
			}
			if a.dir != b.dir {
				return a.dir < b.dir
			}
			return a.seq < b.seq
		})
		for i := range due {
			m := due[i]
			s.sched.At(m.deliverAt, "topo.link-arrive", func() {
				m.egress.Inject(m.frame)
			})
		}
	}
	s.scratch = due[:0]
}

// Run executes the network for the spec's duration and collects results.
// workers ≤ 0 means GOMAXPROCS; workers is clamped to the shard count.
// One worker steps its shards inline with no synchronization at all —
// that run is the serial oracle — and any other worker count produces
// bit-identical Results: shards only interact through inboxes, drains
// happen at the same simulated times with the same merge order, and the
// conservative window (minimum link latency ≥ the bridges' switch cost)
// guarantees a window's drains can never see a racing window's sends.
func (n *Network) Run(workers int) *Results {
	sim.Checkf(!n.ran, "topo: Network.Run is single-shot; Build a fresh network")
	n.ran = true
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(n.shards) {
		workers = len(n.shards)
	}
	if workers < 1 {
		workers = 1
	}

	// Shards publish process-wide metrics once at the end rather than
	// racing tiny per-window flushes thousands of times a simulated
	// second.
	for _, s := range n.shards {
		s.sched.DeferMetricsFlush(true)
	}

	if workers == 1 {
		n.runWorker(0, 1, nil)
	} else {
		bar := newBarrier(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//ctmsvet:allow shardowned this is the ownership transfer itself: Run hands each worker its disjoint shard slice once, before any window starts, and joins them all before touching shard state again
			go func(w int) {
				defer wg.Done()
				n.runWorker(w, workers, bar)
			}(w)
		}
		wg.Wait()
	}

	for _, s := range n.shards {
		s.sched.FlushMetrics()
		for _, g := range s.gens {
			g.Stop()
		}
	}
	return n.collect(workers)
}

// runWorker advances this worker's shards (strided assignment, fixed for
// the whole run) window by window: drain the inboxes up to the window
// end, run the shard's scheduler to it, then meet the other workers at
// the barrier before starting the next window.
func (n *Network) runWorker(w, workers int, bar *barrier) {
	d := n.spec.Duration
	for k := uint64(1); ; k++ {
		t := sim.Time(k) * n.window
		if t > d || t <= 0 {
			t = d
		}
		for i := w; i < len(n.shards); i += workers {
			s := n.shards[i]
			s.drainInboxes(t)
			s.sched.RunUntil(t)
		}
		if bar != nil {
			bar.await()
		}
		if t >= d {
			return
		}
	}
}
