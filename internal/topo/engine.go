package topo

import (
	"cmp"
	"runtime"
	"slices"
	"sync"

	"repro/internal/router"
	"repro/internal/sim"
)

// crossMsg is one frame in flight between shards. egress and dir are
// fixed at Build time; deliverAt is the sender's clock plus the link
// latency, so within one inbox deliverAt is nondecreasing (the sender's
// clock is monotone and the latency constant).
type crossMsg struct {
	deliverAt sim.Time
	dir       int    // global link-direction index: merge tiebreak
	seq       uint64 // send order within the direction: final tiebreak
	egress    *router.Half
	frame     router.Forwarded
}

// inbox is the single-writer queue for one link direction. Only the
// source shard's worker appends (during its window) and only the
// destination shard's worker drains (at the next window boundary); the
// conservative window guarantees no append ever races with a drain that
// could take it — a message sent during window k+1 cannot be due before
// window k+2 (DESIGN.md §9). The mutex is what makes that hand-off
// visible to the race detector and orders the racing-but-ineligible
// appends against the drain's slice surgery.
type inbox struct {
	dir    int
	egress *router.Half

	mu   sync.Mutex
	msgs []crossMsg // guarded by mu
	next uint64     // guarded by mu
	sent uint64     // guarded by mu
	// drainRound is the candidate-round index of the owner's most recent
	// drain. The idle-skip check needs it: a fast worker that decides
	// round q has work drains its inboxes while a slower worker is still
	// evaluating q, removing the very evidence the slow worker needs to
	// reach the same verdict. Seeing drainRound == q tells the slow
	// worker "the owner already executed this round" and forces the same
	// verdict even though the messages are gone.
	drainRound uint64 // guarded by mu
}

func newInbox(dir int, egress *router.Half) *inbox {
	return &inbox{dir: dir, egress: egress}
}

// put appends a message; called from the sender shard's worker.
//
//ctmsvet:crossing push single-writer enqueue: only the sending half's worker calls put, and deliverAt carries now+latency past the window floor
func (b *inbox) put(deliverAt sim.Time, f router.Forwarded) {
	b.mu.Lock()
	b.msgs = append(b.msgs, crossMsg{
		deliverAt: deliverAt,
		dir:       b.dir,
		seq:       b.next,
		egress:    b.egress,
		frame:     f,
	})
	b.next++
	b.sent++
	b.mu.Unlock()
}

// drainDue appends every message with deliverAt ≤ bound to into and
// removes them from the queue. deliverAt is nondecreasing within an
// inbox, so the due messages are exactly a prefix. round is the
// candidate-round index of the executing round; it is recorded even
// when nothing was due, so the idle-skip check of a worker still
// evaluating this round sees that its owner already chose to execute.
//
//ctmsvet:crossing drain receiver-side dequeue: runs only in the barrier step between windows, when the sending half's window is sealed
func (b *inbox) drainDue(bound sim.Time, round uint64, into []crossMsg) []crossMsg {
	b.mu.Lock()
	b.drainRound = round
	due := 0
	for due < len(b.msgs) && b.msgs[due].deliverAt <= bound {
		due++
	}
	if due > 0 {
		into = append(into, b.msgs[:due]...)
		rest := copy(b.msgs, b.msgs[due:])
		for i := rest; i < len(b.msgs); i++ {
			b.msgs[i] = crossMsg{}
		}
		b.msgs = b.msgs[:rest]
	}
	b.mu.Unlock()
	return into
}

// pendingDue reports whether this inbox forces candidate round `round`
// (bounded by `bound` at the receiver) to execute: either a queued
// message is due by the bound, or the owner already drained for exactly
// this round (evidence consumed — see the drainRound field). The match
// must be exact: drainRound > round means the owner *skipped* this
// round and drained a later one, whose removals are provably irrelevant
// here (everything it took was due strictly after this round's bound).
// Racing appends cannot flip a false verdict either: a message sent
// during execution of round r ≥ round carries deliverAt strictly beyond
// nb(r) ≥ nb(round) (the conservation argument in DESIGN.md §9).
//
//ctmsvet:crossing peek idle-skip peek: reads the drain round and the sealed head under the mutex, moves no messages
func (b *inbox) pendingDue(bound sim.Time, round uint64) bool {
	b.mu.Lock()
	due := b.drainRound == round || (len(b.msgs) > 0 && b.msgs[0].deliverAt <= bound)
	b.mu.Unlock()
	return due
}

// leftover reports messages still queued (in flight when the run ended).
//
//ctmsvet:crossing peek end-of-run accounting: reads a count after all workers have joined, moves no messages
func (b *inbox) leftover() int {
	b.mu.Lock()
	l := len(b.msgs)
	b.mu.Unlock()
	return l
}

// arrival is one pooled cross-ring delivery: the reusable payload of a
// "topo.link-arrive" scheduler event, with its injection closure built
// once so steady-state draining allocates neither closures nor payloads.
// The pool lives on the receiving shard and every transition — drain,
// fire, release — happens on that shard's worker.
//
//ctmsvet:shardowned
type arrival struct {
	owner  *shard
	egress *router.Half
	frame  router.Forwarded
	fn     func()
}

// getArrival pops a free arrival, building one (with its permanent
// injection closure) on the cold path only.
//
//ctmsvet:hotpath
func (s *shard) getArrival() *arrival {
	if n := len(s.arrivals); n > 0 {
		a := s.arrivals[n-1]
		s.arrivals[n-1] = nil
		s.arrivals = s.arrivals[:n-1]
		return a
	}
	a := &arrival{owner: s} //ctmsvet:allow hotpath cold refill path, runs only until the arrival pool reaches steady state
	a.fn = func() {         //ctmsvet:allow hotpath the injection closure is built once per pooled arrival, not per frame
		a.egress.Inject(a.frame)
		a.owner.putArrival(a)
	}
	return a
}

// putArrival clears a fired arrival and returns it to the pool.
//
//ctmsvet:hotpath
func (s *shard) putArrival(a *arrival) {
	a.egress = nil
	a.frame = router.Forwarded{}
	s.arrivals = append(s.arrivals, a) //ctmsvet:allow hotpath arrival pool grows to the in-flight high-water mark once, then reuses the array
}

// barrier is a reusable cyclic barrier: await blocks until all n workers
// arrive, then releases the generation together.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int    // guarded by mu
	gen     uint64 // guarded by mu
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// drainInboxes moves every cross-ring frame due by bound out of this
// shard's inboxes and schedules its injection at its arrival time. The
// merge order — (deliverAt, direction index, send seq) — is a total
// order on messages, so the scheduler sees identical (at, seq) insertions
// regardless of how many workers the run uses.
//
//ctmsvet:hotpath
func (s *shard) drainInboxes(bound sim.Time, round uint64) {
	due := s.scratch[:0]
	for _, box := range s.in {
		due = box.drainDue(bound, round, due)
	}
	if len(due) > 0 {
		// slices.SortFunc with a capture-free comparator: no interface
		// boxing, no closure — the merge stays allocation-free.
		slices.SortFunc(due, func(a, b crossMsg) int {
			switch {
			case a.deliverAt != b.deliverAt:
				return cmp.Compare(a.deliverAt, b.deliverAt)
			case a.dir != b.dir:
				return cmp.Compare(a.dir, b.dir)
			default:
				return cmp.Compare(a.seq, b.seq)
			}
		})
		for i := range due {
			m := &due[i]
			a := s.getArrival()
			a.egress = m.egress
			a.frame = m.frame
			s.sched.At(m.deliverAt, "topo.link-arrive", a.fn)
		}
	}
	s.scratch = due[:0]
}

// EngineStats is the engine's own accounting for one Run: how many
// barrier rounds executed, how many were proven empty and skipped
// analytically, and how long workers sat in the barrier (wall-clock,
// measured only when a clock was injected via SetWallClock — the topo
// package itself never reads one, keeping the simulation deterministic).
// None of this is part of Fingerprint: two runs of the same Spec produce
// identical Rounds and RoundsSkipped at any worker count, but stall and
// wall nanos measure the host, not the model.
type EngineStats struct {
	// Rounds is the number of lookahead rounds the workers executed.
	Rounds uint64
	// RoundsSkipped counts rounds proven event-free from published shard
	// statuses and inbox heads, advanced analytically with no barrier.
	RoundsSkipped uint64
	// BarrierStallNanos sums the wall time all workers spent blocked in
	// the barrier (0 for serial runs or when no wall clock is set).
	BarrierStallNanos int64
	// WallNanos is the wall time of the whole worker phase.
	WallNanos int64
}

// StallFraction is the fraction of total worker wall time spent blocked
// at the barrier — the quantity the per-link windows and idle skips
// exist to shrink.
func (e EngineStats) StallFraction(workers int) float64 {
	if e.WallNanos <= 0 || workers <= 0 {
		return 0
	}
	return float64(e.BarrierStallNanos) / (float64(e.WallNanos) * float64(workers))
}

// wallClock, when set, supplies wall-clock nanos for EngineStats. The
// determinism tier bans time.Now in sim-critical packages, so the clock
// is injected by callers that live outside them (cmd/ctmsbench); left
// nil, the engine runs clock-free and the stall columns read zero.
var wallClock func() int64

// SetWallClock injects the wall-clock source EngineStats uses. Call it
// before Run; the engine only reads it. Passing nil disables stall
// measurement again.
func SetWallClock(fn func() int64) { wallClock = fn }

func engineNow() int64 {
	if wallClock == nil {
		return 0
	}
	return wallClock()
}

// shardStatus is one shard's published scheduler state after a round:
// its earliest pending event, if any. Written by the owning worker
// before the barrier, read by every worker's skip check after it; the
// two parity slots keep a fast worker's next-round writes off a slow
// worker's current-round reads.
type shardStatus struct {
	at sim.Time
	ok bool
}

// engineRun is the shared state of one Run's worker phase.
type engineRun struct {
	status  [2][]shardStatus
	stall   []int64 // per-worker barrier wait, wall nanos
	rounds  uint64  // written by worker 0 only
	skipped uint64  // written by worker 0 only
}

// Run executes the network for the spec's duration and collects results.
// workers ≤ 0 means GOMAXPROCS; workers is clamped to the shard count.
// One worker steps its shards inline with no synchronization at all —
// that run is the serial oracle — and any other worker count produces
// bit-identical Results: shards only interact through inboxes, drains
// happen at the same simulated times with the same merge order, and the
// per-link conservative windows (every link latency ≥ the bridges'
// switch cost) guarantee a round's drains can never see a racing
// round's sends.
func (n *Network) Run(workers int) *Results {
	sim.Checkf(!n.ran, "topo: Network.Run is single-shot; Build a fresh network")
	n.ran = true
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(n.shards) {
		workers = len(n.shards)
	}
	if workers < 1 {
		workers = 1
	}

	// Shards publish process-wide metrics once at the end rather than
	// racing tiny per-window flushes thousands of times a simulated
	// second.
	for _, s := range n.shards {
		s.sched.DeferMetricsFlush(true)
	}

	eng := &engineRun{stall: make([]int64, workers)}
	for p := range eng.status {
		eng.status[p] = make([]shardStatus, len(n.shards))
	}
	t0 := engineNow()
	if workers == 1 {
		n.runWorker(0, 1, nil, eng)
	} else {
		bar := newBarrier(workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			//ctmsvet:allow shardowned this is the ownership transfer itself: Run hands each worker its disjoint shard slice once, before any window starts, and joins them all before touching shard state again
			go func(w int) {
				defer wg.Done()
				n.runWorker(w, workers, bar, eng)
			}(w)
		}
		wg.Wait()
	}
	n.engStats = EngineStats{
		Rounds:        eng.rounds,
		RoundsSkipped: eng.skipped,
		WallNanos:     engineNow() - t0,
	}
	for _, s := range eng.stall {
		n.engStats.BarrierStallNanos += s
	}

	for _, s := range n.shards {
		s.sched.FlushMetrics()
		for _, g := range s.gens {
			g.Stop()
		}
	}
	return n.collect(workers)
}

// stepBounds advances the per-link lookahead recurrence one round:
// nb[i] = min(duration, min over shard i's incident links of
// (b[peer] + link latency)), with linkless shards jumping straight to
// the duration. The recurrence is a pure function of the topology, so
// every worker iterates an identical copy with no communication; it is
// monotone (nb ≥ b pointwise, by induction from b ≡ 0) and grows every
// unfinished entry by at least the minimum link latency per round, so
// it reaches the duration in at most ceil(duration/minLatency)+1 rounds
// — and on a uniform-latency connected graph it reproduces the old
// global grid k·window exactly, which is what keeps pre-PR fingerprints
// byte-identical.
func (n *Network) stepBounds(b, nb []sim.Time) {
	d := n.spec.Duration
	for i := range nb {
		m := d
		for _, e := range n.adj[i] {
			if v := b[e.peer] + e.lat; v < m {
				m = v
			}
		}
		nb[i] = m
	}
}

// anyWorkDue reports whether executing candidate round `round` to the
// nb bounds would fire anything anywhere: a shard scheduler holding an
// event at or before its bound, or an inbox that forces the round (a
// due message, or its owner having already drained for exactly this
// round). When it returns false the round is a provable no-op — every
// RunUntil would only move a clock forward — and the workers advance
// the recurrence without draining, running or barriering.
//
// The verdict must be identical across workers or the barrier counts
// desynchronize. It is: statuses are parity-sealed at the last executed
// round's barrier; racing appends carry delivery times strictly beyond
// every bound compared here (conservation, DESIGN.md §9); and a fast
// worker's racing *drain* — which removes the due messages a slower
// evaluator still needs to see — leaves drainRound == round behind as
// equivalent evidence (pendingDue). A worker can only decide "execute"
// when the sealed state says so: the first worker to decide it must
// have seen a sealed status or a due head, since drainRound only
// reaches `round` after some worker already decided.
func (n *Network) anyWorkDue(nb []sim.Time, st []shardStatus, round uint64) bool {
	for i, s := range n.shards {
		if st[i].ok && st[i].at <= nb[i] {
			return true
		}
		for _, box := range s.in {
			if box.pendingDue(nb[i], round) {
				return true
			}
		}
	}
	return false
}

// runWorker advances this worker's shards (strided assignment, fixed for
// the whole run) round by round: compute every shard's next per-link
// bound, skip the round outright if it is provably empty, otherwise
// drain the inboxes up to each owned shard's bound, run its scheduler to
// it, publish its next-event status, and meet the other workers at the
// barrier. The first round always executes (no statuses exist yet) and
// so does the final round (so every clock ends exactly at the duration).
func (n *Network) runWorker(w, workers int, bar *barrier, eng *engineRun) {
	d := n.spec.Duration
	b := make([]sim.Time, len(n.shards))  // bounds after the last round
	nb := make([]sim.Time, len(n.shards)) // candidate bounds for this round
	parity := 0
	var rounds, skipped, round uint64
	first := true
	for {
		round++ // candidate-round index: identical across workers because verdicts converge
		n.stepBounds(b, nb)
		final := true
		for _, t := range nb {
			if t < d {
				final = false
				break
			}
		}
		if !first && !final && !n.anyWorkDue(nb, eng.status[parity], round) {
			skipped++
			copy(b, nb)
			continue
		}
		first = false
		rounds++
		for i := w; i < len(n.shards); i += workers {
			s := n.shards[i]
			s.drainInboxes(nb[i], round)
			s.sched.RunUntil(nb[i])
			at, ok := s.sched.NextAt()
			eng.status[1-parity][i] = shardStatus{at: at, ok: ok}
		}
		if bar != nil {
			t0 := engineNow()
			bar.await()
			eng.stall[w] += engineNow() - t0
		}
		parity = 1 - parity
		copy(b, nb)
		if final {
			if w == 0 {
				eng.rounds, eng.skipped = rounds, skipped
			}
			return
		}
	}
}
