package topo

import (
	"fmt"
	"strings"

	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/session"
	"repro/internal/sim"
)

// StreamResult is one stream's outcome across its whole path.
type StreamResult struct {
	Spec     StreamSpec
	Decision session.Decision
	// Path lists the rings the stream crosses, source first (admitted or
	// not; rejection names the refusing hop in Decision.Reason).
	Path []int

	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Gaps       uint64
	Duplicates uint64

	Glitches       uint64
	StarvedTime    sim.Time
	MaxBufferBytes int

	// Delivery delay versus the nominal capture schedule, measured at the
	// receiver: end-to-end ring access, bridge hops and link latency.
	LatencyMax sim.Time
	LatencySum sim.Time
	LatencyN   uint64
}

// LatencyMean is the average delivery delay (0 when nothing arrived).
func (r StreamResult) LatencyMean() sim.Time {
	if r.LatencyN == 0 {
		return 0
	}
	return r.LatencySum / sim.Time(r.LatencyN)
}

// DeliveredFraction reports Delivered/Sent (0 for streams that never ran).
func (r StreamResult) DeliveredFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// RingResult is one ring's accounting.
type RingResult struct {
	Counters    ring.Counters
	Utilization float64
	//ctmsvet:unit bit/s
	ReservedBits int64
	// Admitted / Rejected count streams whose path includes this ring;
	// a rejection is charged to the refusing ring only.
	Admitted int
	Rejected int
}

// LinkResult is one bridge's accounting: the two halves' forwarding
// stats plus per-direction frame counts and what was still in flight
// when the run ended.
type LinkResult struct {
	Spec       LinkSpec
	A, B       router.HalfStats
	SentAB     uint64
	SentBA     uint64
	InFlightAB int
	InFlightBA int
}

// BurstResult is one burst's source-side accounting.
type BurstResult struct {
	Spec      BurstSpec
	Attempted uint64
	Queued    uint64
	Dropped   uint64
}

// Results is everything one internetwork run produced. Every field except
// Workers is a pure function of the Spec; Fingerprint covers exactly that
// worker-invariant part.
type Results struct {
	Spec    Spec
	Window  sim.Time
	Windows uint64
	Workers int
	// Events is the total event count across all shard schedulers.
	Events uint64
	// Engine is the run's barrier-round accounting (not fingerprinted:
	// Rounds and RoundsSkipped are worker-invariant, but the stall and
	// wall columns measure the host).
	Engine EngineStats

	Streams []StreamResult
	Rings   []RingResult
	Links   []LinkResult
	Bursts  []BurstResult
}

// collect reads every shard's state after the workers have joined (the
// join is the happens-before edge that makes this safe).
func (n *Network) collect(workers int) *Results {
	res := &Results{
		Spec:    n.spec,
		Window:  n.window,
		Workers: workers,
		Engine:  n.engStats,
	}
	if n.window > 0 {
		res.Windows = uint64((n.spec.Duration + n.window - 1) / n.window)
	}

	res.Streams = make([]StreamResult, len(n.streams))
	for i, st := range n.streams {
		r := StreamResult{Spec: st.spec, Decision: st.dec, Path: st.path}
		if st.dec.Admitted {
			tx := st.txDrv.Stats()
			rx := st.recv.Stats()
			r.Sent = tx.PacketsSent
			r.Delivered = rx.InOrder + rx.Gaps
			r.Lost = rx.Lost
			r.Gaps = rx.Gaps
			r.Duplicates = rx.Duplicates
			p := st.play.Finish(n.spec.Duration)
			r.Glitches = p.Glitches
			r.StarvedTime = p.StarvedTime
			r.MaxBufferBytes = p.MaxBufferBytes
			r.LatencyMax = st.latMax
			r.LatencySum = st.latSum
			r.LatencyN = st.latN
		}
		res.Streams[i] = r
	}

	res.Rings = make([]RingResult, len(n.shards))
	for i, s := range n.shards {
		res.Rings[i] = RingResult{
			Counters:     s.ring.Counters(),
			Utilization:  s.ring.Utilization(),
			ReservedBits: s.ring.ReservedBits(),
		}
		res.Events += s.sched.Fired()
	}
	for _, st := range n.streams {
		if st.dec.Admitted {
			for _, r := range st.path {
				res.Rings[r].Admitted++
			}
		} else {
			// Charge the refusal to the hop that refused: the last ring
			// the admission walk reached.
			var refused int
			fmt.Sscanf(st.dec.Reason, "ring %d:", &refused)
			res.Rings[refused].Rejected++
		}
	}

	res.Links = make([]LinkResult, len(n.links))
	for i, lk := range n.links {
		res.Links[i] = LinkResult{
			Spec:       lk.spec,
			A:          lk.halfA.Stats(),
			B:          lk.halfB.Stats(),
			SentAB:     lk.ab.sentTotal(),
			SentBA:     lk.ba.sentTotal(),
			InFlightAB: lk.ab.leftover(),
			InFlightBA: lk.ba.leftover(),
		}
	}

	res.Bursts = make([]BurstResult, len(n.bursts))
	for i, b := range n.bursts {
		res.Bursts[i] = BurstResult{
			Spec: b.spec, Attempted: b.attempted, Queued: b.queued, Dropped: b.dropped,
		}
	}
	return res
}

// sentTotal reports the lifetime message count through the inbox.
//
//ctmsvet:crossing peek end-of-run accounting: reads the lifetime counter after all workers have joined, moves no messages
func (b *inbox) sentTotal() uint64 {
	b.mu.Lock()
	s := b.sent
	b.mu.Unlock()
	return s
}

// Fingerprint renders every worker-invariant observable to a canonical
// string: two runs of the same Spec must produce byte-identical
// fingerprints at any worker count. The shard-vs-serial oracle tests and
// E18's determinism check compare exactly this.
func (r *Results) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topo %s seed=%d dur=%v window=%v windows=%d events=%d\n",
		r.Spec.Name, r.Spec.Seed, r.Spec.Duration, r.Window, r.Windows, r.Events)
	for i, s := range r.Streams {
		fmt.Fprintf(&b, "stream %d %s path=%v", i, s.Spec.Name, s.Path)
		if !s.Decision.Admitted {
			fmt.Fprintf(&b, " REJECTED %q\n", s.Decision.Reason)
			continue
		}
		fmt.Fprintf(&b, " sent=%d delivered=%d lost=%d gaps=%d dups=%d glitches=%d starved=%d maxbuf=%d latmax=%d latsum=%d latn=%d\n",
			s.Sent, s.Delivered, s.Lost, s.Gaps, s.Duplicates,
			s.Glitches, int64(s.StarvedTime), s.MaxBufferBytes,
			int64(s.LatencyMax), int64(s.LatencySum), s.LatencyN)
	}
	for i, rg := range r.Rings {
		c := rg.Counters
		fmt.Fprintf(&b, "ring %d frames=%d bytes=%d mac=%d data=%d purges=%d purgeLost=%d notCopied=%d busy=%d insertions=%d reserved=%d util=%.9f adm=%d rej=%d\n",
			i, c.FramesSent, c.BytesSent, c.MACFrames, c.DataFrames,
			c.PurgeCount, c.PurgeLost, c.NotCopied, int64(c.BusyTime),
			c.InsertionSeen, rg.ReservedBits, rg.Utilization, rg.Admitted, rg.Rejected)
	}
	for i, l := range r.Links {
		fmt.Fprintf(&b, "link %d %d-%d a{fwd=%d bytes=%d inj=%d drop=%d qmax=%d} b{fwd=%d bytes=%d inj=%d drop=%d qmax=%d} ab{sent=%d inflight=%d} ba{sent=%d inflight=%d}\n",
			i, l.Spec.A, l.Spec.B,
			l.A.Forwarded, l.A.Bytes, l.A.Injected, l.A.Dropped, l.A.QueueMax,
			l.B.Forwarded, l.B.Bytes, l.B.Injected, l.B.Dropped, l.B.QueueMax,
			l.SentAB, l.InFlightAB, l.SentBA, l.InFlightBA)
	}
	for i, bu := range r.Bursts {
		fmt.Fprintf(&b, "burst %d attempted=%d queued=%d dropped=%d\n",
			i, bu.Attempted, bu.Queued, bu.Dropped)
	}
	return b.String()
}

// Report renders a human-readable summary.
func (r *Results) Report() string {
	var b strings.Builder
	admitted, rejected := 0, 0
	for _, s := range r.Streams {
		if s.Decision.Admitted {
			admitted++
		} else {
			rejected++
		}
	}
	fmt.Fprintf(&b, "=== topo %s (%d rings, %d links, %v, seed %d): %d streams, %d admitted, %d rejected ===\n",
		r.Spec.Name, len(r.Rings), len(r.Links), r.Spec.Duration, r.Spec.Seed,
		len(r.Streams), admitted, rejected)
	fmt.Fprintf(&b, "engine: window=%v windows=%d workers=%d events=%d\n",
		r.Window, r.Windows, r.Workers, r.Events)
	fmt.Fprintf(&b, "engine: rounds=%d skipped=%d barrier-stall=%.1f%%\n",
		r.Engine.Rounds, r.Engine.RoundsSkipped, 100*r.Engine.StallFraction(r.Workers))
	for _, s := range r.Streams {
		if !s.Decision.Admitted {
			fmt.Fprintf(&b, "  %-14s %v REJECTED: %s\n", s.Spec.Name, s.Path, s.Decision.Reason)
			continue
		}
		fmt.Fprintf(&b, "  %-14s %v sent=%d delivered=%.4f glitches=%d latmean=%v latmax=%v\n",
			s.Spec.Name, s.Path, s.Sent, s.DeliveredFraction(), s.Glitches,
			s.LatencyMean(), s.LatencyMax)
	}
	for i, rg := range r.Rings {
		fmt.Fprintf(&b, "  ring %d: util=%.2f%% frames=%d reserved=%d bits/s adm=%d rej=%d\n",
			i, 100*rg.Utilization, rg.Counters.FramesSent, rg.ReservedBits, rg.Admitted, rg.Rejected)
	}
	for i, l := range r.Links {
		fmt.Fprintf(&b, "  link %d (%d-%d): a→b fwd=%d drop=%d, b→a fwd=%d drop=%d\n",
			i, l.Spec.A, l.Spec.B, l.A.Forwarded, l.A.Dropped, l.B.Forwarded, l.B.Dropped)
	}
	return b.String()
}
