package topo

import (
	"fmt"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/playout"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/rtpc"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/tradapter"
	"repro/internal/vca"
	"repro/internal/workload"
)

// Network is a built internetwork, ready to Run exactly once. All
// machinery is constructed serially by Build — shard schedulers diverge
// only once Run starts stepping them — so the (scheduler, seq) event
// order on every shard is fixed before any worker exists.
type Network struct {
	spec    Spec
	window  sim.Time
	shards  []*shard
	links   []*link
	streams []*stream
	bursts  []*burst
	// routes is the all-pairs next-hop table compiled once during
	// validation; via[r][d] is the first hop's bridge station address on
	// ring r for frames bound to ring d.
	routes *routeTable
	via    [][]ring.Addr
	// adj[i] lists shard i's incident links as (peer, latency) pairs —
	// the per-shard lookahead recurrence the engine iterates (engine.go).
	adj [][]ringEdge
	// engStats is filled by Run and copied into Results by collect.
	engStats EngineStats
	ran      bool
}

// ringEdge is one incident link seen from a shard: the ring on the far
// end and the store-and-forward latency toward (and from) it.
type ringEdge struct {
	peer int
	lat  sim.Time
}

// shard is one ring's slice of the simulation: its own scheduler, the
// ring with population and background load, the per-ring admission
// controller, and the inbound cross-ring queues drained at window
// boundaries. Exactly one worker goroutine ever touches a shard.
//
//ctmsvet:shardowned
type shard struct {
	idx     int
	sched   *sim.Scheduler
	ring    *ring.Ring
	ctrl    *session.Controller
	gens    []interface{ Stop() }
	in      []*inbox   // inbound link directions terminating on this ring
	scratch []crossMsg // drain merge buffer, reused across windows
	// arrivals is the free list of pooled link-arrival events (one per
	// cross-ring frame in flight into this shard), so steady-state
	// draining allocates neither closures nor scheduler payloads.
	arrivals []*arrival
}

// link is one bridge: a Half on each ring plus the two directed inboxes.
type link struct {
	spec         LinkSpec
	halfA, halfB *router.Half
	ab, ba       *inbox // ab carries A→B traffic (drained by B's shard)
}

// stream is one CTMSP stream's live machinery plus its receive-side
// latency accounting (owned by the destination shard during the run).
type stream struct {
	idx   int
	spec  StreamSpec
	dec   session.Decision
	path  []int // rings along the route, source first
	dev   *vca.Device
	txDrv *vca.TxDriver
	recv  *ctmsp.Receiver
	play  *playout.Playout
	// End-to-end delivery delay versus the nominal capture schedule
	// (packet k is captured at (k+1)×Interval on the device's clock), so
	// no cross-shard send timestamp is needed.
	latSum sim.Time
	latMax sim.Time
	latN   uint64
}

// burst is one BurstSpec's source-side accounting.
type burst struct {
	spec      BurstSpec
	attempted uint64
	queued    uint64
	dropped   uint64 // source mbuf pool exhaustion
}

// Build validates the spec and constructs the whole internetwork:
// shards, bridges, routing tables, admission, streams, bursts and
// insertions. The returned Network runs once, at any worker count, with
// bit-identical results.
func Build(spec Spec) (*Network, error) {
	rt, err := spec.validateCompiled()
	if err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	if spec.Population != nil {
		// Full-slice expression: the census must not scribble on the
		// caller's Streams backing array.
		spec.Streams = append(spec.Streams[:len(spec.Streams):len(spec.Streams)],
			expandPopulation(spec, rt)...)
	}

	n := &Network{spec: spec, routes: rt}
	n.window = spec.Duration
	for _, l := range spec.Links {
		if l.Latency < n.window {
			n.window = l.Latency
		}
	}
	n.adj = make([][]ringEdge, spec.Rings)
	for _, l := range spec.Links {
		n.adj[l.A] = append(n.adj[l.A], ringEdge{peer: l.B, lat: l.Latency})
		n.adj[l.B] = append(n.adj[l.B], ringEdge{peer: l.A, lat: l.Latency})
	}

	n.buildShards()
	n.buildLinks()
	n.buildRoutes()
	for i, st := range spec.Streams {
		if err := n.buildStream(i, st); err != nil {
			return nil, err
		}
	}
	for i, b := range spec.Bursts {
		n.buildBurst(i, b)
	}
	for _, ins := range spec.Insertions {
		s := n.shards[ins.Ring]
		purges := ins.Purges
		if purges == 0 {
			purges = defaultInsertionPurges
		}
		rg := s.ring
		s.sched.At(ins.At, "topo.insertion", func() { rg.Insertion(purges) })
	}
	return n, nil
}

// buildShards gives each ring its own scheduler, population and
// background load, mirroring the session layer's single-ring setup.
func (n *Network) buildShards() {
	spec := n.spec
	for i := 0; i < spec.Rings; i++ {
		seed := mixSeed(spec.Seed, saltRing+uint64(i))
		sched := sim.NewScheduler()
		ringCfg := ring.DefaultConfig()
		ringCfg.Seed = seed
		ringCfg.BitRate = spec.RingBitRate
		r := ring.New(sched, ringCfg)
		for p := 0; p < spec.PopulationStations; p++ {
			r.Attach("pop")
		}
		s := &shard{idx: i, sched: sched, ring: r}
		backgroundBitRate := int64(spec.BackgroundUtil * float64(spec.RingBitRate))
		if spec.BackgroundUtil > 0 {
			rng := sim.NewRNG(seed)
			macUtil := spec.BackgroundUtil * 0.1
			if macUtil > 0.01 {
				macUtil = 0.01
			}
			mon := r.Attach("monitor")
			s.gens = append(s.gens, workload.NewMACGen(r, mon, macUtil, rng.Fork("bg-mac")))
			restUtil := spec.BackgroundUtil - macUtil
			if restUtil > 0 {
				src, dst := r.Attach("bg-src"), r.Attach("bg-dst")
				frameTime := sim.WireTime(1522, spec.RingBitRate)
				mean := sim.Scale(frameTime, 1/restUtil)
				s.gens = append(s.gens, workload.NewChatterGen(r, src, dst, 1522, 1522, mean, rng.Fork("bg-data")))
			}
		}
		s.ctrl = session.NewController(spec.RingBitRate, spec.UtilizationCap, backgroundBitRate)
		n.shards = append(n.shards, s)
	}
}

// buildLinks attaches a split-bridge Half per link endpoint and joins
// the pair with one inbox per direction. The Forward callback stamps the
// arrival time with the sender shard's clock — it always runs during
// that shard's event processing — plus the link's store-and-forward
// latency, which is what the engine's lookahead window is built on.
func (n *Network) buildLinks() {
	spec := n.spec
	dir := 0
	for li, ls := range spec.Links {
		a, b := n.shards[ls.A], n.shards[ls.B]
		halfA := router.NewHalf(a.sched, fmt.Sprintf("br%d-r%d", li, ls.A),
			a.ring, ls.A, spec.Rings, mixSeed(spec.Seed, saltHalf+uint64(li)*2))
		halfB := router.NewHalf(b.sched, fmt.Sprintf("br%d-r%d", li, ls.B),
			b.ring, ls.B, spec.Rings, mixSeed(spec.Seed, saltHalf+uint64(li)*2+1))
		lk := &link{spec: ls, halfA: halfA, halfB: halfB}
		lk.ab = newInbox(dir, halfB)
		dir++
		lk.ba = newInbox(dir, halfA)
		dir++
		wire := func(from *shard, box *inbox, lat sim.Time) func(router.Forwarded) {
			sched := from.sched
			return func(f router.Forwarded) { box.put(sched.Now()+lat, f) }
		}
		halfA.Forward = wire(a, lk.ab, ls.Latency)
		halfB.Forward = wire(b, lk.ba, ls.Latency)
		b.in = append(b.in, lk.ab)
		a.in = append(a.in, lk.ba)
		n.links = append(n.links, lk)
	}
}

// buildRoutes projects the compiled next-hop table onto the built
// bridges: via[r][d] is where a frame on ring r bound for ring d must be
// MAC-addressed — the first-hop bridge's station, looked up O(1) in the
// table Validate already compiled.
func (n *Network) buildRoutes() {
	spec := n.spec
	n.via = make([][]ring.Addr, spec.Rings)
	for r := range n.via {
		n.via[r] = make([]ring.Addr, spec.Rings)
		for d := 0; d < spec.Rings; d++ {
			li := n.routes.nextLink(r, d)
			if li < 0 {
				continue
			}
			if spec.Links[li].A == r {
				n.via[r][d] = n.links[li].halfA.Station().Addr()
			} else {
				n.via[r][d] = n.links[li].halfB.Station().Addr()
			}
		}
	}
	for li, ls := range spec.Links {
		for d := 0; d < spec.Rings; d++ {
			if d != ls.A && n.via[ls.A][d] != 0 {
				n.links[li].halfA.SetRoute(d, n.via[ls.A][d])
			}
			if d != ls.B && n.via[ls.B][d] != 0 {
				n.links[li].halfB.SetRoute(d, n.via[ls.B][d])
			}
		}
	}
}

// pathRings walks the compiled table from src to dst, source included.
func (n *Network) pathRings(src, dst int) []int {
	path := n.routes.path(src, dst)
	sim.Checkf(path != nil, "topo: no path %d→%d past validation", src, dst)
	return path
}

// buildStream admits one stream on every ring of its path — rollback on
// the first refusal, with the refusing hop named in the decision — and,
// when admitted, attaches the transmit machinery to the source shard and
// the receive machinery to the destination shard. Cross-ring packets are
// MAC-addressed to the first-hop bridge and carry their final (ring,
// station) in the Outgoing's routed fields; the CTMSP header rides the
// mbuf tag end to end, so the receive path is the session layer's
// unchanged.
func (n *Network) buildStream(i int, spec StreamSpec) error {
	offered := spec.OfferedBits()
	path := n.pathRings(spec.SrcRing, spec.DstRing)
	st := &stream{idx: i, spec: spec, path: path}
	n.streams = append(n.streams, st)

	st.dec = session.Decision{Admitted: true, ReservedBits: offered}
	var granted []int
	for _, r := range path {
		d := n.shards[r].ctrl.Admit(i, spec.Class, offered)
		if !d.Admitted {
			st.dec = session.Decision{Admitted: false,
				Reason: fmt.Sprintf("ring %d: %s", r, d.Reason)}
			for _, g := range granted {
				n.shards[g].ctrl.Release(i)
			}
			return nil
		}
		granted = append(granted, r)
	}
	for _, r := range path {
		n.shards[r].ring.ReserveBits(offered)
	}

	src, dst := n.shards[spec.SrcRing], n.shards[spec.DstRing]
	trCfg := tradapter.DefaultConfig()
	trCfg.CTMSPRingPriority = spec.Class.RingPriority()
	mkHost := func(s *shard, role string, salt uint64) (*kernel.Kernel, *tradapter.Driver) {
		name := fmt.Sprintf("%s-%s", spec.Name, role)
		m := rtpc.NewMachine(s.sched, name, rtpc.DefaultCostModel(),
			mixSeed(n.spec.Seed, saltStream+salt))
		k := kernel.New(m)
		stn := s.ring.Attach(name)
		drv := tradapter.New(k, stn, trCfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	txK, txTR := mkHost(src, "tx", uint64(i)*2)
	rxK, rxTR := mkHost(dst, "rx", uint64(i)*2+1)

	crossRing := spec.SrcRing != spec.DstRing
	dialTo := rxTR.Station().Addr()
	if crossRing {
		dialTo = n.via[spec.SrcRing][spec.DstRing]
	}
	conn, err := ctmsp.Dial(txK, txTR, dialTo, uint8(i%250+1))
	if err != nil {
		return fmt.Errorf("topo: stream %d (%s): %w", i, spec.Name, err)
	}

	dev := vca.NewDevice(txK)
	dev.SetPeriod(spec.Interval)
	txCfg := vca.DefaultTxConfig()
	txCfg.DataBytes = spec.PacketBytes - ctmsp.HeaderSize
	txDrv, err := vca.NewTxDriver(txK, dev, conn, txCfg)
	if err != nil {
		return fmt.Errorf("topo: stream %d (%s): %w", i, spec.Name, err)
	}
	txDrv.MaxOutstanding = maxOutstanding
	if crossRing {
		finalDst := rxTR.Station().Addr()
		dstRing := spec.DstRing
		txDrv.PatchOutgoing = func(out *tradapter.Outgoing) {
			out.RoutedDst = finalDst
			out.RoutedRing = dstRing + 1
		}
	}

	recv := &ctmsp.Receiver{}
	rxDrv := vca.NewRxDriver(rxK, rxTR, recv, vca.DefaultRxConfigB())
	streamBytesPerSec := float64(spec.PacketBytes-ctmsp.HeaderSize) / spec.Interval.Seconds()
	play := playout.New(streamBytesPerSec, n.spec.PlayoutPrebuffer)
	interval := spec.Interval
	rxDrv.OnDelivered = func(h ctmsp.Header, at sim.Time, ev ctmsp.Event) {
		if ev != ctmsp.InOrder && ev != ctmsp.Gap {
			return
		}
		play.Deliver(int(h.Length)-ctmsp.HeaderSize, at)
		if lat := at - sim.Time(h.PacketNum+1)*interval; lat > 0 {
			st.latSum += lat
			st.latN++
			if lat > st.latMax {
				st.latMax = lat
			}
		}
	}

	st.dev, st.txDrv, st.recv, st.play = dev, txDrv, recv, play
	dev.Start()
	return nil
}

// buildBurst schedules a frame burst from a dedicated source host toward
// a handler-less sink host (the driver releases unclaimed frames), using
// the same routed addressing as streams. Bursts bigger than the source
// mbuf pool or the bridge egress queue exercise the drop paths.
func (n *Network) buildBurst(bi int, bs BurstSpec) {
	src, dst := n.shards[bs.SrcRing], n.shards[bs.DstRing]
	mk := func(s *shard, role string, salt uint64) (*kernel.Kernel, *tradapter.Driver) {
		name := fmt.Sprintf("burst%d-%s", bi, role)
		m := rtpc.NewMachine(s.sched, name, rtpc.DefaultCostModel(),
			mixSeed(n.spec.Seed, saltBurst+salt))
		k := kernel.New(m)
		stn := s.ring.Attach(name)
		return k, tradapter.New(k, stn, tradapter.DefaultConfig(), tradapter.DefaultTiming())
	}
	srcK, srcTR := mk(src, "src", uint64(bi)*2)
	_, sinkTR := mk(dst, "sink", uint64(bi)*2+1)
	sinkAddr := sinkTR.Station().Addr()
	crossRing := bs.SrcRing != bs.DstRing
	via := sinkAddr
	if crossRing {
		via = n.via[bs.SrcRing][bs.DstRing]
	}

	b := &burst{spec: bs}
	n.bursts = append(n.bursts, b)
	for j := 0; j < bs.Count; j++ {
		at := bs.At + sim.Time(j)*bs.Gap
		if at > n.spec.Duration {
			break
		}
		src.sched.At(at, "topo.burst", func() {
			b.attempted++
			ch := srcK.Pool.AllocNoWait(bs.PacketBytes)
			if ch == nil {
				b.dropped++
				return
			}
			out := &tradapter.Outgoing{
				Chain: ch,
				Size:  bs.PacketBytes,
				Class: tradapter.ClassIP,
				Dst:   via,
			}
			if crossRing {
				out.RoutedDst = sinkAddr
				out.RoutedRing = bs.DstRing + 1
			}
			pool := srcK.Pool
			out.Done = func(ring.DeliveryStatus) { pool.Free(ch) }
			b.queued++
			srcTR.Output(out)
		})
	}
}

// Shards reports the number of shards (rings).
func (n *Network) Shards() int { return len(n.shards) }

// Window reports the engine's lookahead window: the minimum link
// latency, or the full duration for a linkless spec.
func (n *Network) Window() sim.Time { return n.window }

// Scheduler exposes shard i's scheduler — for tests that inject chaos
// (window-edge events, cancels) before Run. Touching it after Run starts
// would race with the owning worker.
func (n *Network) Scheduler(i int) *sim.Scheduler { return n.shards[i].sched }

// Ring exposes shard i's ring for the same pre-Run purpose.
func (n *Network) Ring(i int) *ring.Ring { return n.shards[i].ring }
