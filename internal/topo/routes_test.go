package topo

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/router"
	"repro/internal/session"
	"repro/internal/sim"
)

// referenceFirstHop is the independent routing oracle the compiled table
// is pinned against: plain per-pair BFS distances, then the first hop is
// the earliest-declared link from src whose far ring sits one hop closer
// to dst. That is exactly the tie-break the pre-refactor per-stream BFS
// produced (BFS explores level k's subtrees in the order their level-1
// roots were discovered, so the first subtree to claim dst is the one
// rooted at the smallest qualifying link index).
func referenceFirstHop(rings int, links []LinkSpec, src, dst int) int {
	dist := func(from int) []int {
		d := make([]int, rings)
		for i := range d {
			d[i] = -1
		}
		d[from] = 0
		queue := []int{from}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, l := range links {
				if l.A != u && l.B != u {
					continue
				}
				v := l.A + l.B - u
				if d[v] < 0 {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return d
	}
	if src == dst {
		return -1
	}
	dSrc := dist(src)
	if dSrc[dst] < 0 {
		return -1
	}
	dDst := dist(dst)
	for li, l := range links {
		if l.A != src && l.B != src {
			continue
		}
		v := l.A + l.B - src
		if dDst[v] == dSrc[dst]-1 {
			return li
		}
	}
	return -1
}

func checkTableAgainstReference(t *testing.T, name string, rings int, links []LinkSpec) {
	t.Helper()
	rt := compileRoutes(rings, links)
	for src := 0; src < rings; src++ {
		for dst := 0; dst < rings; dst++ {
			want := referenceFirstHop(rings, links, src, dst)
			got := rt.first[src][dst]
			if got != want {
				t.Fatalf("%s: first[%d][%d] = %d; reference BFS says %d", name, src, dst, got, want)
			}
		}
	}
}

// TestRouteTableMatchesReferenceBFS pins the compiled table's tie-breaks
// against the reference oracle on the topology families the engine runs:
// lines (the pre-PR E18 shape), grids with a trunk (E20's mesh), and a
// pile of random spanning-tree-plus-chords graphs including disconnected
// ones.
func TestRouteTableMatchesReferenceBFS(t *testing.T) {
	for rings := 2; rings <= 9; rings++ {
		var links []LinkSpec
		for i := 0; i+1 < rings; i++ {
			links = append(links, LinkSpec{A: i, B: i + 1})
		}
		checkTableAgainstReference(t, fmt.Sprintf("line-%d", rings), rings, links)
	}
	// 4×4 grid plus a diagonal trunk: redundant equal-hop paths everywhere.
	const side = 4
	var grid []LinkSpec
	at := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				grid = append(grid, LinkSpec{A: at(x, y), B: at(x+1, y)})
			}
			if y+1 < side {
				grid = append(grid, LinkSpec{A: at(x, y), B: at(x, y+1)})
			}
		}
	}
	for i := 0; i+1 < side; i++ {
		grid = append(grid, LinkSpec{A: at(i, i), B: at(i+1, i+1)})
	}
	checkTableAgainstReference(t, "grid-4x4", side*side, grid)

	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		rings := 2 + r.Intn(10)
		var links []LinkSpec
		for i := 1; i < rings; i++ {
			if r.Intn(5) == 0 {
				continue // leave some rings disconnected
			}
			links = append(links, LinkSpec{A: r.Intn(i), B: i})
		}
		for extra := r.Intn(2 * rings); extra > 0; extra-- {
			a, b := r.Intn(rings), r.Intn(rings)
			if a != b {
				links = append(links, LinkSpec{A: a, B: b})
			}
		}
		checkTableAgainstReference(t, fmt.Sprintf("rand-%d", seed), rings, links)
	}
}

// TestRouteTablePathAndComponent pins the walk helpers on a shape with a
// redundant path and a disconnected island.
func TestRouteTablePathAndComponent(t *testing.T) {
	// 0-1-2-3 ring (redundant) plus isolated 4.
	links := []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 0}}
	rt := compileRoutes(5, links)
	if p := rt.path(0, 2); len(p) != 3 || p[0] != 0 || p[1] != 1 || p[2] != 2 {
		t.Fatalf("path 0→2 = %v; want the earliest-declared two-hop route [0 1 2]", p)
	}
	if p := rt.path(0, 3); len(p) != 2 || p[1] != 3 {
		t.Fatalf("path 0→3 = %v; want the direct hop [0 3]", p)
	}
	if p := rt.path(0, 4); p != nil {
		t.Fatalf("path to the island = %v; want nil", p)
	}
	if comp := rt.component(4); len(comp) != 1 || comp[0] != 4 {
		t.Fatalf("island component = %v", comp)
	}
	if got := rt.describeComponent(0); got != "reaches only rings 0 1 2 3" {
		t.Fatalf("describeComponent(0) = %q", got)
	}
}

// TestValidateNamesLatencyFloorEndpoints pins the satellite fix: the
// lookahead-floor error must say which rings the offending link joins,
// not just the latency value.
func TestValidateNamesLatencyFloorEndpoints(t *testing.T) {
	spec := twoRingSpec()
	spec.Links = []LinkSpec{{A: 0, B: 1, Latency: sim.Microsecond}}
	err := spec.Validate()
	if err == nil {
		t.Fatal("sub-switch-cost latency accepted")
	}
	for _, want := range []string{"rings 0-1", "below the switch cost"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("latency-floor error %q does not contain %q", err, want)
		}
	}
}

// TestValidateUnreachableNamesComponent pins the unreachable-pair error's
// path context: it must describe what the source ring can actually reach.
func TestValidateUnreachableNamesComponent(t *testing.T) {
	spec := Spec{
		Name:     "split-brain",
		Seed:     1,
		Duration: sim.Second,
		Rings:    4,
		Links:    []LinkSpec{{A: 0, B: 1}}, // rings 2 and 3 are islands
		Streams: []StreamSpec{
			{StreamSpec: session.StreamSpec{Name: "lost", PacketBytes: 200,
				Interval: 12 * sim.Millisecond, Class: session.ClassStandard},
				SrcRing: 0, DstRing: 3},
		},
	}
	err := spec.Validate()
	if err == nil {
		t.Fatal("unreachable stream accepted")
	}
	for _, want := range []string{"no path from ring 0 to ring 3", "reaches only rings 0 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unreachable error %q does not contain %q", err, want)
		}
	}
}

// meshSpec is a 3×3 grid with a slow trunk, heterogeneous latencies and
// cross-mesh streams — the randomized-mesh oracle's base shape.
func meshSpec(seed int64) Spec {
	r := rand.New(rand.NewSource(seed))
	const side = 3
	rings := side * side
	spec := Spec{
		Name:           fmt.Sprintf("mesh-oracle-%d", seed),
		Seed:           seed,
		Duration:       500*sim.Millisecond + sim.Time(r.Intn(4))*100*sim.Millisecond,
		Rings:          rings,
		BackgroundUtil: float64(r.Intn(3)) * 0.04,
	}
	at := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				l := LinkSpec{A: at(x, y), B: at(x+1, y)}
				if r.Intn(2) == 0 {
					l.Latency = DefaultLinkLatency + sim.Time(r.Intn(4))*sim.Millisecond
				}
				spec.Links = append(spec.Links, l)
			}
			if y+1 < side {
				spec.Links = append(spec.Links, LinkSpec{A: at(x, y), B: at(x, y+1)})
			}
		}
	}
	spec.Links = append(spec.Links, LinkSpec{A: 0, B: rings - 1, Latency: 6 * sim.Millisecond})
	classes := []session.Class{session.ClassBackground, session.ClassStandard, session.ClassInteractive}
	for i, streams := 0, 3+r.Intn(4); i < streams; i++ {
		spec.Streams = append(spec.Streams, StreamSpec{
			StreamSpec: session.StreamSpec{
				Name:        fmt.Sprintf("m%d", i),
				PacketBytes: 100 + r.Intn(600),
				Interval:    sim.Time(8+r.Intn(20)) * sim.Millisecond,
				Class:       classes[r.Intn(len(classes))],
			},
			SrcRing: r.Intn(rings),
			DstRing: r.Intn(rings),
		})
	}
	if r.Intn(2) == 0 {
		spec.Bursts = append(spec.Bursts, BurstSpec{
			SrcRing: r.Intn(rings), DstRing: r.Intn(rings),
			At: sim.Time(1+r.Intn(300)) * sim.Millisecond,
			Count: 40 + r.Intn(120), PacketBytes: 700 + r.Intn(900),
		})
	}
	return spec
}

// TestMeshOracleWorkerCounts is the mesh extension of the serial oracle:
// randomized 9-ring grid meshes — redundant paths, heterogeneous link
// latencies, a slow chord — must produce byte-identical fingerprints at
// worker counts {1, 2, 3, K}, K the ring count. `make race-shards` runs
// this under the race detector.
func TestMeshOracleWorkerCounts(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := meshSpec(seed)
			run := func(workers int) *Results {
				n, err := Build(spec)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return n.Run(workers)
			}
			ref := run(1)
			want := ref.Fingerprint()
			for _, workers := range []int{2, 3, spec.Rings} {
				got := run(workers)
				if fp := got.Fingerprint(); fp != want {
					t.Fatalf("workers=%d diverged from serial oracle:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, want, workers, fp)
				}
				if got.Engine.Rounds != ref.Engine.Rounds ||
					got.Engine.RoundsSkipped != ref.Engine.RoundsSkipped {
					t.Fatalf("workers=%d round accounting diverged: %d+%d vs serial %d+%d",
						workers, got.Engine.Rounds, got.Engine.RoundsSkipped,
						ref.Engine.Rounds, ref.Engine.RoundsSkipped)
				}
			}
		})
	}
}

// TestInboxPoolsSteadyStateZeroAlloc pins the pooled cross-ring data
// path at the unit level: once warm, an inbox put→drain cycle and an
// arrival get→put cycle allocate nothing. (The end-to-end claim — zero
// allocations per forwarded frame through envelope, chain and scheduler
// — is ctmsbench's allocs/forwarded-frame column; these are the pieces
// the hotpath analyzer also proves allocation-free statically.)
func TestInboxPoolsSteadyStateZeroAlloc(t *testing.T) {
	box := newInbox(0, nil)
	s := &shard{scratch: make([]crossMsg, 0, 16)}
	// Warm the slices to their high-water marks.
	for i := 0; i < 8; i++ {
		box.put(sim.Time(i), router.Forwarded{Size: 100})
	}
	s.scratch = box.drainDue(sim.Time(8), 1, s.scratch[:0])
	s.scratch = s.scratch[:0]
	warm := make([]*arrival, 0, 4)
	for i := 0; i < 4; i++ {
		warm = append(warm, s.getArrival())
	}
	for _, a := range warm {
		s.putArrival(a)
	}

	if n := testing.AllocsPerRun(200, func() {
		box.put(1, router.Forwarded{Size: 100})
		s.scratch = box.drainDue(2, 3, s.scratch[:0])
		s.scratch = s.scratch[:0]
	}); n != 0 {
		t.Fatalf("inbox put/drain cycle allocates %.1f per op; want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		a := s.getArrival()
		s.putArrival(a)
	}); n != 0 {
		t.Fatalf("arrival pool cycle allocates %.1f per op; want 0", n)
	}
}
