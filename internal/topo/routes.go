package topo

import (
	"fmt"
	"strings"
)

// routeTable is the compiled all-pairs next-hop map of the ring graph:
// one BFS per source ring at compile time, O(1) per-hop lookups forever
// after. Validation, population expansion, admission-path walks and the
// bridges' forwarding tables all read this one table, so a mesh with
// redundant paths routes identically everywhere — and identically to the
// per-call BFS the table replaced (lowest link index wins ties, which
// the equivalence test in routes_test.go pins against a reference BFS).
type routeTable struct {
	rings int
	links []LinkSpec
	// first[src][dst] is the link index of the first hop from src toward
	// dst (-1 when unreachable; first[src][src] is -1 by convention).
	first [][]int
}

// compileRoutes builds the table: breadth-first search from every source
// with the adjacency enumerated in link-index order, so among equal-hop
// routes the earliest-declared link always wins. Cycles (meshes,
// redundant paths) need no special casing — BFS visits each ring once.
func compileRoutes(rings int, links []LinkSpec) *routeTable {
	adj := make([][]int, rings)
	for li, l := range links {
		adj[l.A] = append(adj[l.A], li)
		adj[l.B] = append(adj[l.B], li)
	}
	first := make([][]int, rings)
	for src := 0; src < rings; src++ {
		f := make([]int, rings)
		for i := range f {
			f[i] = -1
		}
		visited := make([]bool, rings)
		visited[src] = true
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, li := range adj[u] {
				v := links[li].A + links[li].B - u
				if visited[v] {
					continue
				}
				visited[v] = true
				if u == src {
					f[v] = li
				} else {
					f[v] = f[u]
				}
				queue = append(queue, v)
			}
		}
		first[src] = f
	}
	return &routeTable{rings: rings, links: links, first: first}
}

// reachable reports whether a frame on src can be routed to dst.
func (t *routeTable) reachable(src, dst int) bool {
	return src == dst || t.first[src][dst] >= 0
}

// nextLink is the link index of the first hop from src toward dst; the
// caller must have checked reachability.
func (t *routeTable) nextLink(src, dst int) int { return t.first[src][dst] }

// path walks the table from src to dst and returns the rings along the
// route, source first.
func (t *routeTable) path(src, dst int) []int {
	path := []int{src}
	for cur := src; cur != dst; {
		li := t.first[cur][dst]
		if li < 0 {
			return nil
		}
		cur = t.links[li].A + t.links[li].B - cur
		path = append(path, cur)
	}
	return path
}

// component lists the rings reachable from r (r included), ascending.
func (t *routeTable) component(r int) []int {
	var out []int
	for d := 0; d < t.rings; d++ {
		if t.reachable(r, d) {
			out = append(out, d)
		}
	}
	return out
}

// describeComponent renders a ring's reachable set compactly for
// unreachable-pair errors: the full list when small, a truncated prefix
// with a count otherwise.
func (t *routeTable) describeComponent(r int) string {
	comp := t.component(r)
	const show = 8
	if len(comp) <= show {
		return fmt.Sprintf("reaches only rings %s", joinRings(comp))
	}
	return fmt.Sprintf("reaches only %d rings (%s, ...)", len(comp), joinRings(comp[:show]))
}

func joinRings(rs []int) string {
	var b strings.Builder
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}
