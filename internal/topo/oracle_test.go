package topo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/session"
	"repro/internal/sim"
)

// randomSpec generates a random internetwork: a spanning tree plus spare
// links, streams of every shape (local, adjacent, multi-hop), bursts
// sized to overflow mbuf pools and bridge queues, and insertions parked
// on or next to window boundaries. Everything derives from the seed.
func randomSpec(seed int64) Spec {
	r := rand.New(rand.NewSource(seed))
	rings := 2 + r.Intn(7) // 2..8
	spec := Spec{
		Name:               fmt.Sprintf("oracle-%d", seed),
		Seed:               seed,
		Duration:           600*sim.Millisecond + sim.Time(r.Intn(5))*100*sim.Millisecond,
		Rings:              rings,
		PopulationStations: 8,
		BackgroundUtil:     float64(r.Intn(4)) * 0.08,
	}
	// Spanning tree first so every ring is reachable, then spare links
	// that create alternative routes (BFS must tie-break identically).
	for i := 1; i < rings; i++ {
		l := LinkSpec{A: r.Intn(i), B: i}
		if r.Intn(2) == 0 {
			l.Latency = DefaultLinkLatency + sim.Time(r.Intn(5))*500*sim.Microsecond
		}
		spec.Links = append(spec.Links, l)
	}
	for extra := r.Intn(rings); extra > 0; extra-- {
		a, b := r.Intn(rings), r.Intn(rings)
		if a != b {
			spec.Links = append(spec.Links, LinkSpec{A: a, B: b})
		}
	}
	classes := []session.Class{session.ClassBackground, session.ClassStandard, session.ClassInteractive}
	for i, streams := 0, 2+r.Intn(5); i < streams; i++ {
		spec.Streams = append(spec.Streams, StreamSpec{
			StreamSpec: session.StreamSpec{
				Name:        fmt.Sprintf("s%d", i),
				PacketBytes: 60 + r.Intn(900),
				Interval:    sim.Time(6+r.Intn(25)) * sim.Millisecond,
				Class:       classes[r.Intn(len(classes))],
			},
			SrcRing: r.Intn(rings),
			DstRing: r.Intn(rings),
		})
	}
	for i, bursts := 0, r.Intn(3); i < bursts; i++ {
		spec.Bursts = append(spec.Bursts, BurstSpec{
			SrcRing:     r.Intn(rings),
			DstRing:     r.Intn(rings),
			At:          sim.Time(1+r.Intn(int(spec.Duration/sim.Millisecond)-1)) * sim.Millisecond,
			Count:       50 + r.Intn(250),
			PacketBytes: 600 + r.Intn(1200),
			Gap:         sim.Time(r.Intn(2)) * 40 * sim.Microsecond,
		})
	}
	for i, ins := 0, r.Intn(3); i < ins; i++ {
		// Park insertions exactly on or one tick past a window boundary.
		at := sim.Time(1+r.Intn(200)) * DefaultLinkLatency
		at += sim.Time(r.Intn(2)) // 0 or 1 ns
		if at > spec.Duration {
			at = spec.Duration / 2
		}
		spec.Insertions = append(spec.Insertions, InsertionSpec{Ring: r.Intn(rings), At: at})
	}
	return spec
}

// applyChaos schedules schedule-and-cancel churn exactly on window
// boundaries of every shard — the edge the wheel's inclusive RunUntil and
// the engine's drain bound share. The same seed produces the same churn
// on every Build, so fingerprints stay comparable; the fired events are
// counted by the schedulers and show up in Results.Events.
func applyChaos(n *Network, seed int64) {
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	w := n.Window()
	for i := 0; i < n.Shards(); i++ {
		sched := n.Scheduler(i)
		for k := 0; k < 6; k++ {
			at := sim.Time(1+r.Intn(100)) * w
			victim := sched.At(at+sim.Time(r.Intn(2)), "chaos.victim", func() {})
			if r.Intn(2) == 0 {
				// Cancel from an event firing at the same boundary.
				sched.At(at, "chaos.cancel", func() { victim.Cancel() })
			} else {
				victim.Cancel()
			}
			sched.At(at, "chaos.respawn", func() {
				sched.After(sim.Time(1+r.Intn(3))*sim.Microsecond, "chaos.child", func() {})
			})
		}
	}
}

// TestShardSerialEquivalence is the oracle: for a dozen randomized
// internetworks — cross-ring bursts, cancels at window edges, bridge
// queue overflow — the sharded run must produce byte-identical results
// at every worker count, with the one-worker serial run as the reference.
func TestShardSerialEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := randomSpec(seed)
			run := func(workers int) string {
				n, err := Build(spec)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				applyChaos(n, seed)
				return n.Run(workers).Fingerprint()
			}
			want := run(1)
			counts := []int{2, 3, spec.Rings, 8}
			for _, workers := range counts {
				if workers <= 1 {
					continue
				}
				if got := run(workers); got != want {
					t.Fatalf("workers=%d diverged from serial oracle (rings=%d):\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, spec.Rings, want, workers, got)
				}
			}
		})
	}
}

// TestSerialOracleIsStable pins a fingerprint's self-consistency: two
// serial runs of the same spec are byte-identical (the precondition for
// blaming any divergence on the engine rather than the build).
func TestSerialOracleIsStable(t *testing.T) {
	spec := randomSpec(99)
	build := func() *Network {
		n, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := build().Run(1).Fingerprint()
	b := build().Run(1).Fingerprint()
	if a != b {
		t.Fatalf("serial runs diverged:\n%s\n---\n%s", a, b)
	}
}
