package topo

import (
	"strings"
	"testing"

	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/workload"
)

// twoRingSpec is the smallest interesting internetwork: one bridge, one
// cross-ring stream.
func twoRingSpec() Spec {
	return Spec{
		Name:     "two-ring",
		Seed:     42,
		Duration: 2 * sim.Second,
		Rings:    2,
		Links:    []LinkSpec{{A: 0, B: 1}},
		Streams: []StreamSpec{
			{StreamSpec: session.StreamSpec{Name: "voice", PacketBytes: 200,
				Interval: 12 * sim.Millisecond, Class: session.ClassInteractive},
				SrcRing: 0, DstRing: 1},
		},
	}
}

func TestTwoRingStreamDelivers(t *testing.T) {
	n, err := Build(twoRingSpec())
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1)
	s := res.Streams[0]
	if !s.Decision.Admitted {
		t.Fatalf("stream rejected: %s", s.Decision.Reason)
	}
	if s.Sent < 160 {
		t.Fatalf("sent %d packets in 2s at 12ms intervals; want ≥160", s.Sent)
	}
	if got := s.DeliveredFraction(); got < 0.99 {
		t.Fatalf("delivered fraction %.4f; want ≥0.99 (sent=%d delivered=%d lost=%d)",
			got, s.Sent, s.Delivered, s.Lost)
	}
	// Every packet crossed the bridge: the link latency is a floor on the
	// observed delivery delay.
	if s.LatencyN == 0 || s.LatencyMean() < DefaultLinkLatency {
		t.Fatalf("mean latency %v over %d packets; want ≥ link latency %v",
			s.LatencyMean(), s.LatencyN, sim.Time(DefaultLinkLatency))
	}
	l := res.Links[0]
	if l.A.Forwarded == 0 || l.B.Injected == 0 {
		t.Fatalf("bridge never forwarded: %+v / %+v", l.A, l.B)
	}
	if l.A.Forwarded != l.SentAB {
		t.Fatalf("forwarded %d but inbox saw %d", l.A.Forwarded, l.SentAB)
	}
}

func TestMultiHopPathAndAdmission(t *testing.T) {
	spec := Spec{
		Name:     "line-3",
		Seed:     7,
		Duration: sim.Second,
		Rings:    3,
		Links:    []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}},
		Streams: []StreamSpec{
			{StreamSpec: session.StreamSpec{Name: "far", PacketBytes: 200,
				Interval: 12 * sim.Millisecond, Class: session.ClassStandard},
				SrcRing: 0, DstRing: 2},
		},
	}
	n, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1)
	s := res.Streams[0]
	wantPath := []int{0, 1, 2}
	if len(s.Path) != 3 || s.Path[0] != 0 || s.Path[1] != 1 || s.Path[2] != 2 {
		t.Fatalf("path %v; want %v", s.Path, wantPath)
	}
	if !s.Decision.Admitted {
		t.Fatalf("rejected: %s", s.Decision.Reason)
	}
	// A couple of packets may still be in flight across the two hops when
	// the run ends; everything else must arrive.
	if s.Delivered+3 < s.Sent {
		t.Fatalf("delivered %d of %d over two hops (lost=%d)", s.Delivered, s.Sent, s.Lost)
	}
	// The reservation landed on every hop.
	for i, rg := range res.Rings {
		if rg.ReservedBits != s.Decision.ReservedBits {
			t.Fatalf("ring %d reserved %d bits; want %d", i, rg.ReservedBits, s.Decision.ReservedBits)
		}
		if rg.Admitted != 1 {
			t.Fatalf("ring %d admitted=%d; want 1", i, rg.Admitted)
		}
	}
}

func TestAdmissionNamesRefusingHop(t *testing.T) {
	// Ring 1 is pre-loaded with background traffic so the transit hop,
	// not the source, refuses.
	spec := Spec{
		Name:     "refuse-transit",
		Seed:     3,
		Duration: sim.Second,
		Rings:    3,
		Links:    []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}},
		// One fat local stream on ring 1 eats its budget first.
		Streams: []StreamSpec{
			{StreamSpec: session.StreamSpec{Name: "hog", PacketBytes: 4000,
				Interval: 12 * sim.Millisecond, Class: session.ClassInteractive},
				SrcRing: 1, DstRing: 1},
			{StreamSpec: session.StreamSpec{Name: "through", PacketBytes: 4000,
				Interval: 12 * sim.Millisecond, Class: session.ClassStandard},
				SrcRing: 0, DstRing: 2},
		},
	}
	n, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1)
	hog, through := res.Streams[0], res.Streams[1]
	if !hog.Decision.Admitted {
		t.Fatalf("hog rejected: %s", hog.Decision.Reason)
	}
	if through.Decision.Admitted {
		t.Fatalf("through admitted; the transit hop should have refused")
	}
	if !strings.HasPrefix(through.Decision.Reason, "ring 1:") {
		t.Fatalf("refusal reason %q does not name the transit hop", through.Decision.Reason)
	}
	// The rollback released ring 0's partial grant.
	if res.Rings[0].ReservedBits != 0 {
		t.Fatalf("ring 0 still holds %d reserved bits after rollback", res.Rings[0].ReservedBits)
	}
	if res.Rings[1].Rejected != 1 {
		t.Fatalf("refusal charged to rings %+v; want ring 1", res.Rings)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := twoRingSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero duration", func(s *Spec) { s.Duration = 0 }},
		{"no rings", func(s *Spec) { s.Rings = 0 }},
		{"self link", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 0}} }},
		{"link out of range", func(s *Spec) { s.Links = []LinkSpec{{A: 0, B: 5}} }},
		{"latency below switch cost", func(s *Spec) { s.Links[0].Latency = sim.Microsecond }},
		{"stream ring out of range", func(s *Spec) { s.Streams[0].DstRing = 9 }},
		{"unreachable stream", func(s *Spec) { s.Links = nil }},
		{"burst unreachable", func(s *Spec) {
			s.Links = []LinkSpec{{A: 0, B: 1}}
			s.Streams = nil
			s.Rings = 3
			s.Bursts = []BurstSpec{{SrcRing: 0, DstRing: 2, At: sim.Millisecond, Count: 1, PacketBytes: 100}}
		}},
		{"insertion out of range", func(s *Spec) { s.Insertions = []InsertionSpec{{Ring: 7}} }},
	}
	for _, c := range cases {
		spec := base
		c.mut(&spec)
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: Build accepted a bad spec", c.name)
		}
	}
}

func TestRunIsSingleShot(t *testing.T) {
	n, err := Build(twoRingSpec())
	if err != nil {
		t.Fatal(err)
	}
	n.Run(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	n.Run(1)
}

// popSpec is a four-ring line carrying a population census on top of a
// couple of hand-written streams.
func popSpec() Spec {
	return Spec{
		Name:     "pop-census",
		Seed:     1991,
		Duration: 2 * sim.Second,
		Rings:    4,
		Links:    []LinkSpec{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}},
		Streams: []StreamSpec{
			{StreamSpec: session.StreamSpec{Name: "voice", PacketBytes: 200,
				Interval: 12 * sim.Millisecond, Class: session.ClassInteractive},
				SrcRing: 0, DstRing: 3},
		},
		Population: &workload.PopulationSpec{
			ArrivalsPerSec: 20,
			ZipfSkew:       1.0,
			Titles:         12,
			ChurnHalfLife:  sim.Second,
		},
	}
}

func TestPopulationCensusExpansion(t *testing.T) {
	n, err := Build(popSpec())
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run(1)
	// Hand-written stream plus a census: rate 20/s with a 1 s half-life
	// keeps ~29 streams alive at any instant; demand a healthy floor.
	if len(res.Streams) < 10 {
		t.Fatalf("census expanded to only %d streams", len(res.Streams)-1)
	}
	admitted := 0
	for _, s := range res.Streams {
		if s.Decision.Admitted {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("no census stream admitted")
	}
}

func TestPopulationCensusShardOracle(t *testing.T) {
	spec := popSpec()
	run := func(workers int) string {
		n, err := Build(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return n.Run(workers).Fingerprint()
	}
	want := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("population run diverged at %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}
