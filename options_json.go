package ctms

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Options marshals to a JSON scenario file — the format ctmsbench's
// -scenario flag loads — and unmarshals from one. Durations render as Go
// duration strings ("12ms") and parse from either that form or a bare
// nanosecond count; unknown fields are rejected so a typoed toggle fails
// loudly instead of silently running the default.

// jsonDuration is time.Duration with a human-readable JSON form.
type jsonDuration time.Duration

func (d jsonDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("ctms: bad duration %q: %w", x, err)
		}
		*d = jsonDuration(parsed)
	case float64:
		*d = jsonDuration(time.Duration(x))
	default:
		return fmt.Errorf("ctms: duration must be a string like \"12ms\" or a nanosecond count, not %T", v)
	}
	return nil
}

// optionsJSON mirrors Options field for field; only the duration fields
// change type. Keeping it adjacent to Options (and covered by the
// round-trip golden test) is what keeps the two in sync.
type optionsJSON struct {
	Name     string       `json:"name"`
	Seed     int64        `json:"seed"`
	Duration jsonDuration `json:"duration"`

	PacketBytes int          `json:"packet_bytes"`
	Interval    jsonDuration `json:"interval"`

	Protocol Protocol `json:"protocol"`
	Tool     Tool     `json:"tool"`

	TxIOChannelMemory bool `json:"tx_io_channel_memory"`
	TxCopyHeaderOnly  bool `json:"tx_copy_header_only"`
	TxCopyVCAToMbufs  bool `json:"tx_copy_vca_to_mbufs"`
	PointerTransfer   bool `json:"pointer_transfer"`

	RxCopyToMbufs bool `json:"rx_copy_to_mbufs"`
	RxCopyToVCA   bool `json:"rx_copy_to_vca"`

	DriverPriority   bool `json:"driver_priority"`
	RingPriority     bool `json:"ring_priority"`
	PrecomputeHeader bool `json:"precompute_header"`
	PurgeInterrupt   bool `json:"purge_interrupt"`
	DriverRaceBug    bool `json:"driver_race_bug"`

	PublicNetwork   bool `json:"public_network"`
	NetworkLoad     Load `json:"network_load"`
	Multiprocessing bool `json:"multiprocessing"`
	Insertions      bool `json:"insertions"`

	ForceInsertionAt jsonDuration `json:"force_insertion_at"`
	RingBitRate      int64        `json:"ring_bit_rate"`
	PlayoutPrebuffer jsonDuration `json:"playout_prebuffer"`

	HistogramBinWidthMicros float64 `json:"histogram_bin_width_micros"`
}

func (o Options) toJSON() optionsJSON {
	return optionsJSON{
		Name:                    o.Name,
		Seed:                    o.Seed,
		Duration:                jsonDuration(o.Duration),
		PacketBytes:             o.PacketBytes,
		Interval:                jsonDuration(o.Interval),
		Protocol:                o.Protocol,
		Tool:                    o.Tool,
		TxIOChannelMemory:       o.TxIOChannelMemory,
		TxCopyHeaderOnly:        o.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:        o.TxCopyVCAToMbufs,
		PointerTransfer:         o.PointerTransfer,
		RxCopyToMbufs:           o.RxCopyToMbufs,
		RxCopyToVCA:             o.RxCopyToVCA,
		DriverPriority:          o.DriverPriority,
		RingPriority:            o.RingPriority,
		PrecomputeHeader:        o.PrecomputeHeader,
		PurgeInterrupt:          o.PurgeInterrupt,
		DriverRaceBug:           o.DriverRaceBug,
		PublicNetwork:           o.PublicNetwork,
		NetworkLoad:             o.NetworkLoad,
		Multiprocessing:         o.Multiprocessing,
		Insertions:              o.Insertions,
		ForceInsertionAt:        jsonDuration(o.ForceInsertionAt),
		RingBitRate:             o.RingBitRate,
		PlayoutPrebuffer:        jsonDuration(o.PlayoutPrebuffer),
		HistogramBinWidthMicros: o.HistogramBinWidthMicros,
	}
}

func (j optionsJSON) toOptions() Options {
	return Options{
		Name:                    j.Name,
		Seed:                    j.Seed,
		Duration:                time.Duration(j.Duration),
		PacketBytes:             j.PacketBytes,
		Interval:                time.Duration(j.Interval),
		Protocol:                j.Protocol,
		Tool:                    j.Tool,
		TxIOChannelMemory:       j.TxIOChannelMemory,
		TxCopyHeaderOnly:        j.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:        j.TxCopyVCAToMbufs,
		PointerTransfer:         j.PointerTransfer,
		RxCopyToMbufs:           j.RxCopyToMbufs,
		RxCopyToVCA:             j.RxCopyToVCA,
		DriverPriority:          j.DriverPriority,
		RingPriority:            j.RingPriority,
		PrecomputeHeader:        j.PrecomputeHeader,
		PurgeInterrupt:          j.PurgeInterrupt,
		DriverRaceBug:           j.DriverRaceBug,
		PublicNetwork:           j.PublicNetwork,
		NetworkLoad:             j.NetworkLoad,
		Multiprocessing:         j.Multiprocessing,
		Insertions:              j.Insertions,
		ForceInsertionAt:        time.Duration(j.ForceInsertionAt),
		RingBitRate:             j.RingBitRate,
		PlayoutPrebuffer:        time.Duration(j.PlayoutPrebuffer),
		HistogramBinWidthMicros: j.HistogramBinWidthMicros,
	}
}

// MarshalJSON renders the options as a scenario document.
func (o Options) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.toJSON())
}

// UnmarshalJSON parses a scenario document. Unknown fields are an error.
func (o *Options) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var j optionsJSON
	if err := dec.Decode(&j); err != nil {
		return fmt.Errorf("ctms: bad scenario: %w", err)
	}
	*o = j.toOptions()
	return nil
}

// LoadScenarios parses a scenario file's contents: either one Options
// object or an array of them. Every scenario is validated before any is
// returned, so a multi-scenario file fails as a whole or runs as a whole.
func LoadScenarios(data []byte) ([]Options, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var scenarios []Options
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &scenarios); err != nil {
			return nil, err
		}
	} else {
		var one Options
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, err
		}
		scenarios = []Options{one}
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("ctms: scenario file holds no scenarios")
	}
	for i, s := range scenarios {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, s.Name, err)
		}
	}
	return scenarios, nil
}
