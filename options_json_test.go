package ctms_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	ctms "repro"
)

var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

// TestOptionsJSONGolden pins the scenario-file format: Test Case B
// marshals to exactly testdata/options.golden.json, and that file parses
// back to exactly Test Case B. Regenerate with UPDATE_GOLDEN=1 go test.
func TestOptionsJSONGolden(t *testing.T) {
	opts := ctms.TestCaseB()
	got, err := json.MarshalIndent(opts, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "options.golden.json")
	if updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scenario format drifted from the golden file (UPDATE_GOLDEN=1 to accept):\n--- got\n%s--- want\n%s", got, want)
	}

	var back ctms.Options
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if back != opts {
		t.Fatalf("golden does not round-trip:\n got %+v\nwant %+v", back, opts)
	}
}

func TestOptionsJSONFlexibleDurations(t *testing.T) {
	var o ctms.Options
	doc := []byte(`{"duration": "2m", "interval": 12000000, "packet_bytes": 2000}`)
	if err := json.Unmarshal(doc, &o); err != nil {
		t.Fatal(err)
	}
	if o.Duration != 2*time.Minute || o.Interval != 12*time.Millisecond {
		t.Fatalf("durations: %v / %v", o.Duration, o.Interval)
	}
	if err := json.Unmarshal([]byte(`{"duration": "2 parsecs"}`), &o); err == nil {
		t.Fatal("bad duration string must fail")
	}
	if err := json.Unmarshal([]byte(`{"duration": true}`), &o); err == nil {
		t.Fatal("non-string non-number duration must fail")
	}
	if err := json.Unmarshal([]byte(`{"durration": "2m"}`), &o); err == nil {
		t.Fatal("unknown field must fail")
	}
}

func TestLoadScenarios(t *testing.T) {
	one, err := json.Marshal(ctms.TestCaseA())
	if err != nil {
		t.Fatal(err)
	}
	single, err := ctms.LoadScenarios(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0] != ctms.TestCaseA() {
		t.Fatalf("single scenario: %+v", single)
	}

	arr, err := json.Marshal([]ctms.Options{ctms.TestCaseA(), ctms.TestCaseB()})
	if err != nil {
		t.Fatal(err)
	}
	many, err := ctms.LoadScenarios(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 || many[1] != ctms.TestCaseB() {
		t.Fatalf("scenario array: %+v", many)
	}

	bad := ctms.TestCaseA()
	bad.Protocol = "carrier-pigeon"
	badDoc, err := json.Marshal([]ctms.Options{ctms.TestCaseA(), bad})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctms.LoadScenarios(badDoc); err == nil {
		t.Fatal("invalid scenario in an array must fail the whole file")
	}
	if _, err := ctms.LoadScenarios([]byte(`[]`)); err == nil {
		t.Fatal("empty scenario file must fail")
	}
}

// TestResultMarshals pins that the public Result (histograms included)
// serializes cleanly, so scenario runners can archive runs as JSON.
func TestResultMarshals(t *testing.T) {
	opts := ctms.TestCaseA()
	opts.Duration = 5 * time.Second
	res, err := ctms.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["Name"] != "test-case-A" || back["Sent"].(float64) == 0 {
		t.Fatalf("marshaled result lost its accounting: %v %v", back["Name"], back["Sent"])
	}
}
