package ctms

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// ExperimentInfo describes one entry of the reproduction matrix.
type ExperimentInfo struct {
	ID     string // "E1".."E17"
	Source string // figure/table/section in the paper
	Title  string
}

// ExperimentMetric is one paper-vs-measured comparison row.
type ExperimentMetric struct {
	Name     string
	Paper    string
	Measured string
	OK       bool
}

// ExperimentResult is an experiment's outcome.
type ExperimentResult struct {
	Info    ExperimentInfo
	Metrics []ExperimentMetric
	// Figures maps figure names to ASCII renderings.
	Figures map[string]string
	Notes   []string
}

// AllOK reports whether every metric matched the paper's shape.
func (r *ExperimentResult) AllOK() bool {
	for _, m := range r.Metrics {
		if !m.OK {
			return false
		}
	}
	return true
}

// Experiments lists the reproduction matrix (DESIGN.md §4): every figure,
// table and headline claim of the paper, plus the extensions (E12–E17).
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range core.Experiments() {
		out = append(out, ExperimentInfo{ID: e.ID, Source: e.Source, Title: e.Title})
	}
	return out
}

// RunExperiment executes one experiment. duration scales the long
// scenarios (zero means each experiment's default; the paper's Test Case
// B ran 117 minutes).
func RunExperiment(id string, duration time.Duration) (*ExperimentResult, error) {
	e, ok := core.ExperimentByID(id)
	if !ok {
		return nil, fmt.Errorf("ctms: unknown experiment %q", id)
	}
	return resultFromComparison(e, e.Run(core.Scale{Duration: sim.Time(duration)})), nil
}

// RunAllExperiments runs the full reproduction matrix (E1–E17) across
// parallelism worker goroutines — 1 runs serially on the calling
// goroutine, 0 selects GOMAXPROCS — and returns the results in matrix
// order. duration scales the long scenarios exactly as in RunExperiment.
//
// Determinism guarantee: every experiment is a self-contained simulation
// with its own scheduler and seeded RNG, dispatched with inputs fixed
// before fan-out and collected by index — so the returned results,
// including every metric string and rendered figure, are byte-identical
// for any parallelism.
func RunAllExperiments(parallelism int, duration time.Duration) []*ExperimentResult {
	exps := core.Experiments()
	scale := core.Scale{Duration: sim.Time(duration)}
	out := make([]*ExperimentResult, len(exps))
	for i, mr := range core.RunMatrix(exps, scale, parallelism) {
		out[i] = resultFromComparison(mr.Experiment, mr.Comparison)
	}
	return out
}

func resultFromComparison(e core.Experiment, cmp *core.Comparison) *ExperimentResult {
	res := &ExperimentResult{
		Info:    ExperimentInfo{ID: e.ID, Source: e.Source, Title: e.Title},
		Figures: cmp.Figures,
		Notes:   cmp.Notes,
	}
	for _, m := range cmp.Metrics {
		res.Metrics = append(res.Metrics, ExperimentMetric{
			Name: m.Name, Paper: m.Paper, Measured: m.Measured, OK: m.OK,
		})
	}
	return res
}
