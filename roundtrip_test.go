package ctms

import (
	"reflect"
	"testing"
	"time"
)

// TestOptionsCoreRoundTrip drives every Options field — located by
// reflection, so a newly added field is covered automatically — through
// toCore and back. A field someone adds to Options without wiring it into
// the core.Config conversion comes back zeroed and fails here loudly,
// instead of silently running every experiment at the default.
func TestOptionsCoreRoundTrip(t *testing.T) {
	var o Options
	v := reflect.ValueOf(&o).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		// The enums only round-trip valid spellings; pick non-default ones.
		switch name {
		case "Protocol":
			f.Set(reflect.ValueOf(StockUnix))
			continue
		case "Tool":
			f.Set(reflect.ValueOf(PCAT))
			continue
		case "NetworkLoad":
			f.Set(reflect.ValueOf(LoadHeavy))
			continue
		}
		// Distinctive per-field values, so two crossed wires (field A
		// written into field B) cannot cancel out.
		switch f.Kind() {
		case reflect.String:
			f.SetString("probe-" + name)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Int, reflect.Int64:
			if f.Type() == reflect.TypeOf(time.Duration(0)) {
				f.SetInt(int64(time.Duration(i+1) * time.Millisecond))
			} else {
				f.SetInt(int64(1000 + i))
			}
		case reflect.Float64:
			f.SetFloat(float64(i) + 0.5)
		default:
			t.Fatalf("Options.%s has kind %v: teach this test to fill it", name, f.Kind())
		}
	}

	cfg, err := o.toCore()
	if err != nil {
		t.Fatal(err)
	}
	back := fromCore(cfg)
	if !reflect.DeepEqual(o, back) {
		for i := 0; i < v.NumField(); i++ {
			name := v.Type().Field(i).Name
			a, b := v.Field(i).Interface(), reflect.ValueOf(back).Field(i).Interface()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("Options.%s does not survive toCore/fromCore: sent %v, got back %v (unwired?)", name, a, b)
			}
		}
	}
}
