package ctms

import (
	"fmt"
	"time"

	"repro/internal/ring"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StreamClass is a stream's priority class. Admission bookkeeping,
// degradation order and Token Ring access priority all follow it: when
// Ring Purges shrink the usable capacity, ClassBackground streams are
// shed before ClassStandard, and ClassInteractive last.
type StreamClass string

const (
	// ClassBackground is prefetch/replication traffic: first to shed.
	ClassBackground StreamClass = "background"
	// ClassStandard is ordinary playback, and what the empty string means.
	ClassStandard StreamClass = "standard"
	// ClassInteractive is conversational media (the paper's telephony
	// case): last to shed.
	ClassInteractive StreamClass = "interactive"
)

var classTable = enumTable[StreamClass, session.Class]{
	kind: "stream class", def: ClassStandard,
	vals: []enumPair[StreamClass, session.Class]{
		{ClassBackground, session.ClassBackground},
		{ClassStandard, session.ClassStandard},
		{ClassInteractive, session.ClassInteractive},
	},
}

// StreamSpec describes one CTMSP stream offered to a Session: PacketBytes
// (CTMSP header included) sent every Interval, at the given Class.
type StreamSpec struct {
	Name        string
	PacketBytes int
	Interval    time.Duration
	Class       StreamClass
}

// CodecClass is one entry of a population's codec mix: the stream shape
// every arrival of this class runs, its admission class, and the
// relative probability of drawing it.
type CodecClass struct {
	// Name labels streams of this class in results.
	Name string
	// PacketBytes per packet (CTMSP header included), sent every
	// Interval.
	PacketBytes int
	Interval    time.Duration
	// Class is the admission/shed priority ("background", "standard",
	// "interactive"; empty means standard).
	Class StreamClass
	// Weight is the class's relative draw probability (any positive
	// scale; weights are normalized over the mix).
	Weight float64
}

// PopulationSpec describes a statistical stream population instead of a
// hand-enumerated list: Poisson arrivals (ArrivalsPerSec, shaped by the
// piecewise Diurnal curve), exponential lifetimes (ChurnHalfLife),
// demand Zipf-skewed across Titles, and a weighted codec mix. A session
// with a population compiles the whole arrival schedule from the seed
// before running — same options, same population, at any parallelism —
// and records the playout-latency distribution of every delivered
// packet.
type PopulationSpec struct {
	// ArrivalsPerSec is the mean Poisson stream-arrival rate before
	// diurnal modulation. Required.
	ArrivalsPerSec float64
	// ZipfSkew is the exponent s of the title popularity distribution
	// (title k drawn with probability ∝ 1/(k+1)^s); 0 is uniform.
	ZipfSkew float64
	// Titles is the catalog size demand is skewed over (0 = 1).
	Titles int
	// ChurnHalfLife is the stream-lifetime half-life: half the admitted
	// streams hang up within it (0 = 5 s).
	ChurnHalfLife time.Duration
	// Classes is the codec mix (empty = mostly standard playback with a
	// sliver of interactive voice and background prefetch).
	Classes []CodecClass
	// Diurnal divides the run into equal segments and multiplies the
	// arrival rate by each segment's entry; empty means a flat rate.
	Diurnal []float64
	// StormAt triggers StormInsertions back-to-back station insertions
	// at the given offset (a correlated capacity shock); zero disables.
	StormAt         time.Duration
	StormInsertions int
	// MaxStreams caps the compiled arrival count (0 = 100000).
	MaxStreams int
}

// toInternal converts to the workload layer's spec, translating class
// names with the same table Add uses (unknown spellings get the full
// list of valid ones).
func (p *PopulationSpec) toInternal() (*workload.PopulationSpec, error) {
	if p == nil {
		return nil, nil
	}
	out := &workload.PopulationSpec{
		ArrivalsPerSec:  p.ArrivalsPerSec,
		ZipfSkew:        p.ZipfSkew,
		Titles:          p.Titles,
		ChurnHalfLife:   sim.Time(p.ChurnHalfLife),
		Diurnal:         p.Diurnal,
		StormAt:         sim.Time(p.StormAt),
		StormInsertions: p.StormInsertions,
		MaxStreams:      p.MaxStreams,
	}
	for i, cc := range p.Classes {
		class, err := classTable.toCore(cc.Class)
		if err != nil {
			return nil, fmt.Errorf("ctms: population class %d (%s): %w", i, cc.Name, err)
		}
		out.Classes = append(out.Classes, workload.CodecClass{
			Name:        cc.Name,
			PacketBytes: cc.PacketBytes,
			Interval:    sim.Time(cc.Interval),
			Priority:    int(class),
			Weight:      cc.Weight,
		})
	}
	return out, nil
}

// Validate reports specification mistakes — bad ranges, unknown class
// spellings — with the valid values spelled out.
func (p *PopulationSpec) Validate() error {
	internal, err := p.toInternal()
	if err != nil {
		return err
	}
	if internal == nil {
		return nil
	}
	if err := internal.Validate(); err != nil {
		return fmt.Errorf("ctms: %w", err)
	}
	return nil
}

// SessionOptions configures a multi-stream Session. The zero value plus a
// Duration is runnable: the paper's 4 Mbit/s ring, a 90% admission cap,
// no background load.
type SessionOptions struct {
	Name     string
	Seed     int64
	Duration time.Duration

	// RingBitRate overrides the 4 Mbit/s ring (0 = the paper's rate).
	RingBitRate int64
	// UtilizationCap is the fraction of the wire admission may promise;
	// zero selects the 0.90 default, which leaves headroom for token
	// rotation and MAC traffic.
	UtilizationCap float64
	// BackgroundUtil is the offered background load as a fraction of the
	// ring; the admission budget subtracts it.
	BackgroundUtil float64
	// DisableAdmission runs every stream regardless of budget and never
	// sheds — the free-for-all E17 compares against.
	DisableAdmission bool
	// ForceInsertionAt injects one station insertion (a burst of
	// back-to-back Ring Purges) at the given offset; zero disables.
	ForceInsertionAt time.Duration
	// PlayoutPrebuffer delays each stream's playback after its first
	// packet (0 = the §6 default of 40 ms; 130 ms rides out an insertion).
	PlayoutPrebuffer time.Duration

	// Population, when non-nil, adds a statistical stream population on
	// top of any streams offered with Add: arrivals are admitted live at
	// their Poisson arrival instants and hang up at their churn-drawn
	// departures. Population runs fill SessionResult.Departed and the
	// playout-latency quantiles.
	Population *PopulationSpec
}

// Validate reports whether the options would build a runnable session,
// without building one.
func (o SessionOptions) Validate() error {
	_, err := NewSession(o)
	return err
}

// Admission is the controller's verdict on one stream, available from
// Session.Add before the session runs.
type Admission struct {
	// Admitted reports whether the stream's bandwidth reservation was
	// granted.
	Admitted bool
	// Reason explains a rejection (empty when admitted).
	Reason string
	// ReservedBits is the ring bandwidth reserved in bits/s, Token Ring
	// framing included; zero when rejected.
	//
	//ctmsvet:unit bit/s
	ReservedBits int64
}

// SessionStream is one stream's outcome in a SessionResult.
type SessionStream struct {
	Spec      StreamSpec
	Admission Admission

	// Shed reports the stream was admitted but stopped mid-run by the
	// degradation policy; ShedAt is when.
	Shed   bool
	ShedAt time.Duration

	// Population accounting: Arrived marks a churn-generated stream (at
	// ArrivedAt, watching Zipf-drawn catalog rank Title); Departed marks
	// a natural hang-up at DepartedAt, as opposed to a policy shed.
	Arrived    bool
	ArrivedAt  time.Duration
	Title      int
	Departed   bool
	DepartedAt time.Duration

	Sent      uint64
	Delivered uint64
	Lost      uint64

	// Playout accounting over the stream's active time (until shed or
	// end of run).
	Glitches          uint64
	GlitchesPerMinute float64
	StarvedFraction   float64
	MaxBufferBytes    int
}

// SessionResult is everything one Session run produced.
type SessionResult struct {
	Streams  []SessionStream
	Admitted int
	Rejected int
	Shed     int
	// Departed counts population streams that hung up naturally (churn).
	Departed int

	// PlayoutLatencyP99/P999 are tail quantiles of every delivered
	// packet's delay past its nominal capture schedule; zero unless the
	// session ran a population.
	PlayoutLatencyP99  time.Duration
	PlayoutLatencyP999 time.Duration

	RingUtilization float64
	// ReservedBits is the bandwidth still reserved when the run ended
	// (admitted minus shed).
	//
	//ctmsvet:unit bit/s
	ReservedBits int64
	// Report is the human-readable per-stream summary.
	Report string
}

// WorstAdmittedGlitchRate reports the highest glitches/minute among
// streams that were admitted and never shed (0 when none ran).
func (r *SessionResult) WorstAdmittedGlitchRate() float64 {
	worst := 0.0
	for _, s := range r.Streams {
		if s.Admission.Admitted && !s.Shed && s.GlitchesPerMinute > worst {
			worst = s.GlitchesPerMinute
		}
	}
	return worst
}

// Session runs N concurrent CTMSP streams over one simulated Token Ring,
// with admission control and class-ordered degradation — the multi-stream
// layer §3's bandwidth-guarantee argument implies. Build one with
// NewSession, offer streams with Add (each gets its admission verdict
// immediately), then Run the admitted set:
//
//	s, _ := ctms.NewSession(ctms.SessionOptions{Duration: 20 * time.Second})
//	adm, _ := s.Add(ctms.StreamSpec{Name: "voice", PacketBytes: 500,
//		Interval: 12 * time.Millisecond, Class: ctms.ClassInteractive})
//	if !adm.Admitted {
//		// the ring could not guarantee this stream; adm.Reason says why
//	}
//	res, _ := s.Run()
//
// The run is a deterministic simulation: same options, same streams, same
// results, at any test or sweep parallelism.
type Session struct {
	opts  SessionOptions
	cfg   session.Config
	probe *session.Controller
	ran   bool
}

// NewSession validates the options and prepares an empty session.
func NewSession(opts SessionOptions) (*Session, error) {
	pop, err := opts.Population.toInternal()
	if err != nil {
		return nil, err
	}
	cfg := session.Config{
		Name:             opts.Name,
		Seed:             opts.Seed,
		Duration:         sim.Time(opts.Duration),
		RingBitRate:      opts.RingBitRate,
		UtilizationCap:   opts.UtilizationCap,
		BackgroundUtil:   opts.BackgroundUtil,
		DisableAdmission: opts.DisableAdmission,
		ForceInsertionAt: sim.Time(opts.ForceInsertionAt),
		PlayoutPrebuffer: sim.Time(opts.PlayoutPrebuffer),
		Population:       pop,
	}
	// Validate everything but the streams (none yet): run the config
	// checks against a placeholder stream, which always validates.
	probeCfg := cfg
	probeCfg.Streams = []session.StreamSpec{{PacketBytes: 500, Interval: sim.Millisecond}}
	if err := probeCfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{opts: opts, cfg: cfg}
	if !opts.DisableAdmission {
		s.probe = s.newController()
	}
	return s, nil
}

// newController mirrors the controller session.Run will build, so Add's
// eager verdicts match the run's replayed decisions exactly.
func (s *Session) newController() *session.Controller {
	ringBitRate := s.cfg.RingBitRate
	if ringBitRate == 0 {
		ringBitRate = ring.DefaultConfig().BitRate
	}
	uc := s.cfg.UtilizationCap
	if uc == 0 {
		uc = session.DefaultUtilizationCap
	}
	return session.NewController(ringBitRate, uc, int64(s.cfg.BackgroundUtil*float64(ringBitRate)))
}

// Add offers one stream to the session and returns its admission verdict
// immediately — rejected streams are recorded (they appear in the result
// with their reason) but consume nothing. The verdict is final: admission
// is first come, first reserved, so Run replays the same decisions.
func (s *Session) Add(spec StreamSpec) (Admission, error) {
	if s.ran {
		return Admission{}, fmt.Errorf("ctms: session already ran")
	}
	class, err := classTable.toCore(spec.Class)
	if err != nil {
		return Admission{}, err
	}
	internal := session.StreamSpec{
		Name:        spec.Name,
		PacketBytes: spec.PacketBytes,
		Interval:    sim.Time(spec.Interval),
		Class:       class,
	}
	probeCfg := s.cfg
	probeCfg.Streams = []session.StreamSpec{internal}
	if err := probeCfg.Validate(); err != nil {
		return Admission{}, err
	}
	id := len(s.cfg.Streams)
	s.cfg.Streams = append(s.cfg.Streams, internal)
	if s.probe == nil { // free-for-all: everything "admitted"
		return Admission{Admitted: true, ReservedBits: internal.OfferedBits()}, nil
	}
	d := s.probe.Admit(id, class, internal.OfferedBits())
	return Admission{Admitted: d.Admitted, Reason: d.Reason, ReservedBits: d.ReservedBits}, nil
}

// Run simulates the session and returns the per-stream outcomes. It can
// run once; build a new Session to run a variation.
func (s *Session) Run() (*SessionResult, error) {
	if s.ran {
		return nil, fmt.Errorf("ctms: session already ran")
	}
	s.ran = true
	res, err := session.Run(s.cfg)
	if err != nil {
		return nil, err
	}
	out := &SessionResult{
		Admitted:        res.Admitted,
		Rejected:        res.Rejected,
		Shed:            res.ShedN,
		Departed:        res.Departed,
		RingUtilization: res.RingUtilization,
		ReservedBits:    res.ReservedBitsEnd,
		Report:          res.Report(),
	}
	if res.PlayoutLatency != nil && res.PlayoutLatency.N() > 0 {
		out.PlayoutLatencyP99 = time.Duration(res.PlayoutLatency.Quantile(0.99)) * time.Microsecond
		out.PlayoutLatencyP999 = time.Duration(res.PlayoutLatency.Quantile(0.999)) * time.Microsecond
	}
	for _, st := range res.Streams {
		out.Streams = append(out.Streams, SessionStream{
			Spec: StreamSpec{
				Name:        st.Spec.Name,
				PacketBytes: st.Spec.PacketBytes,
				Interval:    st.Spec.Interval.Std(),
				Class:       classTable.fromCore(st.Spec.Class),
			},
			Admission: Admission{
				Admitted:     st.Decision.Admitted,
				Reason:       st.Decision.Reason,
				ReservedBits: st.Decision.ReservedBits,
			},
			Shed:              st.Shed,
			ShedAt:            st.ShedAt.Std(),
			Arrived:           st.Arrived,
			ArrivedAt:         st.ArrivedAt.Std(),
			Title:             st.Title,
			Departed:          st.Departed,
			DepartedAt:        st.DepartedAt.Std(),
			Sent:              st.Sent,
			Delivered:         st.Delivered,
			Lost:              st.Lost,
			Glitches:          st.Glitches,
			GlitchesPerMinute: st.GlitchesPerMinute(),
			StarvedFraction:   st.StarvedFraction(),
			MaxBufferBytes:    st.MaxBufferBytes,
		})
	}
	return out, nil
}
