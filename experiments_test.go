package ctms_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	ctms "repro"
)

func TestExperimentListing(t *testing.T) {
	exps := ctms.Experiments()
	if len(exps) < 15 {
		t.Fatalf("matrix too small: %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Source == "" {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	// E17 must stay in the matrix: its presence here is what guarantees
	// the serial-vs-parallel determinism test below covers the session
	// layer's multi-stream sweep too.
	for _, want := range []string{"E1", "E3", "E4", "E5", "E15", "E17"} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestRunExperimentPublic(t *testing.T) {
	res, err := ctms.RunExperiment("E2", 0) // structural, instant
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("E2 deviated: %+v", res.Metrics)
	}
	if res.Info.ID != "E2" || len(res.Metrics) == 0 {
		t.Fatalf("result shape: %+v", res)
	}
	if _, err := ctms.RunExperiment("E99", 0); err == nil {
		t.Fatal("unknown id must error")
	}
}

// renderResults flattens every metric row, note and figure of a matrix
// run into one byte string, so equality means "the user sees the same
// report".
func renderResults(results []*ctms.ExperimentResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "== %s (%s) %s\n", r.Info.ID, r.Info.Source, r.Info.Title)
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "%s|%s|%s|%t\n", m.Name, m.Paper, m.Measured, m.OK)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note:%s\n", n)
		}
		figs := make([]string, 0, len(r.Figures))
		for name := range r.Figures {
			figs = append(figs, name)
		}
		sort.Strings(figs)
		for _, name := range figs {
			fmt.Fprintf(&b, "fig:%s\n%s\n", name, r.Figures[name])
		}
	}
	return b.String()
}

// TestRunAllExperimentsSerialParallelIdentical is the lab's determinism
// guarantee: the full matrix (E1–E17, the session sweep included) run
// serially and across 8 workers must produce byte-identical metric
// tables.
func TestRunAllExperimentsSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix twice is too slow for -short")
	}
	const dur = 10 * time.Second // simulated
	serial := ctms.RunAllExperiments(1, dur)
	parallel := ctms.RunAllExperiments(8, dur)
	if len(serial) != len(parallel) || len(serial) != len(ctms.Experiments()) {
		t.Fatalf("matrix sizes differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Info.ID != parallel[i].Info.ID {
			t.Fatalf("result order differs at %d: %s vs %s", i, serial[i].Info.ID, parallel[i].Info.ID)
		}
	}
	s, p := renderResults(serial), renderResults(parallel)
	if s != p {
		line := 0
		sl, pl := strings.Split(s, "\n"), strings.Split(p, "\n")
		for line < len(sl) && line < len(pl) && sl[line] == pl[line] {
			line++
		}
		sGot, pGot := "<eof>", "<eof>"
		if line < len(sl) {
			sGot = sl[line]
		}
		if line < len(pl) {
			pGot = pl[line]
		}
		t.Fatalf("serial and parallel matrices diverge at line %d:\nserial:   %s\nparallel: %s", line, sGot, pGot)
	}
}

func TestRunExperimentScaled(t *testing.T) {
	res, err := ctms.RunExperiment("E4", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("E4 at 30 s deviated:\n%+v", res.Metrics)
	}
	if len(res.Figures) == 0 {
		t.Fatal("E4 should render Figure 5-3")
	}
}
