package ctms_test

import (
	"testing"
	"time"

	ctms "repro"
)

func TestExperimentListing(t *testing.T) {
	exps := ctms.Experiments()
	if len(exps) < 15 {
		t.Fatalf("matrix too small: %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Source == "" {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, want := range []string{"E1", "E3", "E4", "E5", "E15"} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestRunExperimentPublic(t *testing.T) {
	res, err := ctms.RunExperiment("E2", 0) // structural, instant
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("E2 deviated: %+v", res.Metrics)
	}
	if res.Info.ID != "E2" || len(res.Metrics) == 0 {
		t.Fatalf("result shape: %+v", res)
	}
	if _, err := ctms.RunExperiment("E99", 0); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestRunExperimentScaled(t *testing.T) {
	res, err := ctms.RunExperiment("E4", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllOK() {
		t.Fatalf("E4 at 30 s deviated:\n%+v", res.Metrics)
	}
	if len(res.Figures) == 0 {
		t.Fatal("E4 should render Figure 5-3")
	}
}
