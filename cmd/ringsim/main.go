// Command ringsim is a standalone explorer for the 4 Mbit Token Ring
// model: it sweeps offered load and reports utilization, token wait and
// per-priority delivery latency, demonstrating the access-priority
// behaviour CTMSP depends on.
//
// Usage:
//
//	ringsim -stations 70 -seconds 30
package main

import (
	"flag"
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		stations = flag.Int("stations", 70, "stations on the ring")
		seconds  = flag.Float64("seconds", 20, "simulated seconds per sweep point")
		size     = flag.Int("size", 1522, "background frame size (bytes)")
		seed     = flag.Int64("seed", 1, "random seed")
		mbit     = flag.Int64("mbit", 4, "ring signalling rate in Mbit/s (4 or 16)")
	)
	flag.Parse()

	fmt.Printf("%d Mbit Token Ring, %d stations, %d-byte background frames\n", *mbit, *stations, *size)
	fmt.Printf("%8s %12s %14s %16s %16s\n", "offered", "utilization", "frames", "lowprio lat(µs)", "hiprio lat(µs)")

	for _, offered := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
		util, frames, lo, hi := sweep(*stations, *seconds, *size, *seed, offered, *mbit*1_000_000)
		fmt.Printf("%7.0f%% %11.1f%% %14d %16.0f %16.0f\n",
			100*offered, 100*util, frames, lo.Mean(), hi.Mean())
	}
}

// sweep offers `offered` fraction of ring bandwidth as priority-0 frames
// from several stations, plus a probe stream at priority 4, and measures
// queue-to-delivery latency for both.
func sweep(stations int, seconds float64, size int, seed int64, offered float64, bitRate int64) (util float64, frames uint64, lo, hi *stats.Histogram) {
	sched := sim.NewScheduler()
	cfg := ring.DefaultConfig()
	cfg.Seed = seed
	cfg.BitRate = bitRate
	r := ring.New(sched, cfg)

	var senders []*ring.Station
	for i := 0; i < stations; i++ {
		senders = append(senders, r.Attach(fmt.Sprintf("st%d", i)))
	}
	dst := r.Attach("sink")
	dst.OnReceive(func(*ring.Frame, sim.Time) {}) // the sink copies every frame

	lo = stats.NewHistogram(100, "low-priority latency")
	hi = stats.NewHistogram(100, "high-priority latency")
	rng := sim.NewRNG(seed)

	// Background: exponential arrivals totalling the offered load.
	frameTime := sim.WireTime(size, cfg.BitRate)
	mean := sim.Scale(frameTime, 1/offered)
	var arm func()
	arm = func() {
		sched.After(rng.Exp(mean), "bg", func() {
			st := sim.Pick(rng, senders)
			sent := sched.Now()
			st.Transmit(ring.NewDataFrame(st.Addr(), dst.Addr(), 0, size, nil, nil),
				func(s ring.DeliveryStatus) {
					if s.Delivered {
						lo.Add((s.CompletedAt - sent).Microseconds())
					}
				})
			arm()
		})
	}
	arm()

	// Probe: a 2000-byte high-priority frame every 12 ms (the CTMSP
	// pattern).
	probe := senders[0]
	sched.Every(12*sim.Millisecond, "probe", func() {
		sent := sched.Now()
		probe.Transmit(ring.NewDataFrame(probe.Addr(), dst.Addr(), 4, 2021, nil, nil),
			func(s ring.DeliveryStatus) {
				if s.Delivered {
					hi.Add((s.CompletedAt - sent).Microseconds())
				}
			})
	})

	sched.RunUntil(sim.Time(seconds * float64(sim.Second)))
	return r.Utilization(), r.Counters().FramesSent, lo, hi
}
