// Command ctmsbench regenerates every table and figure of the paper's
// evaluation: it runs the reproduction matrix (experiments E1–E17 of
// DESIGN.md) and prints paper-vs-measured comparisons plus ASCII versions
// of Figures 5-2, 5-3 and 5-4.
//
// The matrix fans out across a worker pool (every experiment is an
// independent deterministic simulation), and each invocation writes a
// machine-readable BENCH.json with per-experiment wall times, the
// simulated-seconds-per-second throughput and allocation counts, so
// successive revisions leave a perf trajectory.
//
// Usage:
//
//	ctmsbench                  # run everything at the default scale
//	ctmsbench -experiment E4   # one experiment
//	ctmsbench -full            # full 117-minute test-case durations
//	ctmsbench -minutes 10      # custom duration for the long scenarios
//	ctmsbench -markdown        # emit an EXPERIMENTS.md-style report
//	ctmsbench -parallel 8      # worker count (default GOMAXPROCS)
//	ctmsbench -benchout x.json # where to write the perf record ("" = off)
//	ctmsbench -scenario f.json # run custom Options scenario(s) from a file
//
// A scenario file holds one JSON-encoded ctms.Options object or an array
// of them (the format testdata/options.golden.json pins; durations accept
// "12ms"-style strings or nanosecond counts). Scenario mode runs each one
// and prints its report instead of the experiment matrix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	ctms "repro"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/sim"
)

// timedResult pairs one experiment's outcome with its host wall time.
// The timing lives here rather than in core.RunMatrix so internal/core
// stays clock-free (the determinism analyzer enforces that); dispatch
// still fans out across the same lab pool with collection by index.
type timedResult struct {
	core.MatrixResult
	wall time.Duration
}

// runMatrixTimed is core.RunMatrix plus per-experiment wall bookkeeping.
func runMatrixTimed(exps []core.Experiment, s core.Scale, parallelism int) []timedResult {
	pool := lab.New(parallelism)
	return lab.Map(pool, len(exps), func(i int) timedResult {
		start := time.Now()
		cmp := exps[i].Run(s)
		return timedResult{
			MatrixResult: core.MatrixResult{Experiment: exps[i], Comparison: cmp},
			wall:         time.Since(start),
		}
	})
}

// benchRecord is the BENCH.json schema (documented in EXPERIMENTS.md).
type benchRecord struct {
	Timestamp    string            `json:"timestamp"`
	Parallelism  int               `json:"parallelism"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	ScaleMinutes float64           `json:"scale_minutes"`
	WallSeconds  float64           `json:"wall_seconds"`
	SimSeconds   float64           `json:"sim_seconds"`
	SimSecPerSec float64           `json:"sim_seconds_per_second"`
	Mallocs      uint64            `json:"mallocs"`
	AllocBytes   uint64            `json:"alloc_bytes"`
	Failures     int               `json:"failures"`
	Experiments  []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	ID          string  `json:"id"`
	Source      string  `json:"source"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
	Metrics     int     `json:"metrics"`
	OK          bool    `json:"ok"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "run a single experiment (E1..E17)")
		scenario   = flag.String("scenario", "", "run ctms.Options scenario(s) from a JSON file")
		full       = flag.Bool("full", false, "run the paper's full 117-minute durations")
		minutes    = flag.Float64("minutes", 4, "scenario duration in minutes (ignored with -full)")
		seed       = flag.Int64("seed", 0, "override the default seed")
		markdown   = flag.Bool("markdown", false, "emit a markdown report")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the matrix (1 = serial)")
		benchout   = flag.String("benchout", "BENCH.json", "write the machine-readable perf record here (empty disables)")
	)
	flag.Parse()

	if *scenario != "" {
		if err := runScenarios(*scenario, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := core.Scale{Seed: *seed}
	if *full {
		scale.Duration = 117 * sim.Minute
	} else if *minutes > 0 {
		scale.Duration = sim.Time(*minutes * float64(sim.Minute))
	}

	exps := core.Experiments()
	if *experiment != "" {
		e, ok := core.ExperimentByID(strings.ToUpper(*experiment))
		if !ok {
			fmt.Fprintf(os.Stderr, "ctmsbench: unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		exps = []core.Experiment{e}
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	simBefore := core.SimulatedTotal()
	start := time.Now()

	results := runMatrixTimed(exps, scale, *parallel)

	wall := time.Since(start)
	simRun := core.SimulatedTotal() - simBefore
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	failures := 0
	rec := benchRecord{
		Timestamp:    start.UTC().Format(time.RFC3339),
		Parallelism:  *parallel,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ScaleMinutes: float64(scale.Duration) / float64(sim.Minute),
		WallSeconds:  wall.Seconds(),
		SimSeconds:   simRun.Seconds(),
		SimSecPerSec: simRun.Seconds() / wall.Seconds(),
		Mallocs:      after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
	}
	for _, mr := range results {
		ok := mr.Comparison.AllOK()
		if !ok {
			failures++
		}
		rec.Experiments = append(rec.Experiments, benchExperiment{
			ID:          mr.Experiment.ID,
			Source:      mr.Experiment.Source,
			Title:       mr.Experiment.Title,
			WallSeconds: mr.wall.Seconds(),
			Metrics:     len(mr.Comparison.Metrics),
			OK:          ok,
		})
		if *markdown {
			printMarkdown(mr.Experiment, mr.Comparison)
		} else {
			fmt.Printf("=== %s (%s) %s  [wall %v]\n",
				mr.Experiment.ID, mr.Experiment.Source, mr.Experiment.Title, mr.wall.Round(time.Millisecond))
			fmt.Print(mr.Comparison.Render())
			for name, fig := range mr.Comparison.Figures {
				fmt.Printf("\n%s\n%s\n", name, fig)
			}
			fmt.Println()
		}
	}
	rec.Failures = failures

	if !*markdown {
		fmt.Printf("--- matrix wall %v, %.0f simulated s (%.0f simsec/s), parallel %d\n",
			wall.Round(time.Millisecond), rec.SimSeconds, rec.SimSecPerSec, *parallel)
	}

	if *benchout != "" {
		if err := writeBench(*benchout, rec); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ctmsbench: %d experiment(s) deviated from the paper's shape\n", failures)
		os.Exit(1)
	}
}

// runScenarios loads a JSON scenario file (one ctms.Options or an array)
// and runs each scenario, printing its report. A nonzero seed overrides
// every scenario's own.
func runScenarios(path string, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	scenarios, err := ctms.LoadScenarios(data)
	if err != nil {
		return err
	}
	for i, opts := range scenarios {
		if seed != 0 {
			opts.Seed = seed
		}
		start := time.Now()
		res, err := ctms.Run(opts)
		if err != nil {
			return fmt.Errorf("scenario %d (%s): %w", i, opts.Name, err)
		}
		fmt.Printf("=== scenario %s  [wall %v]\n%s\n", res.Name, time.Since(start).Round(time.Millisecond), res.Report)
	}
	return nil
}

func writeBench(path string, rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printMarkdown(e core.Experiment, cmp *core.Comparison) {
	fmt.Printf("### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
	fmt.Println("| metric | paper | measured | match |")
	fmt.Println("|---|---|---|---|")
	for _, m := range cmp.Metrics {
		mark := "yes"
		if !m.OK {
			mark = "NO"
		}
		fmt.Printf("| %s | %s | %s | %s |\n", m.Name, m.Paper, m.Measured, mark)
	}
	for _, n := range cmp.Notes {
		fmt.Printf("\n_%s_\n", n)
	}
	for name, fig := range cmp.Figures {
		fmt.Printf("\n%s\n\n```\n%s```\n", name, fig)
	}
	fmt.Println()
}
