// Command ctmsbench regenerates every table and figure of the paper's
// evaluation: it runs the reproduction matrix (experiments E1–E20 of
// DESIGN.md) and prints paper-vs-measured comparisons plus ASCII versions
// of Figures 5-2, 5-3 and 5-4.
//
// The matrix fans out across a worker pool (every experiment is an
// independent deterministic simulation), and each invocation writes a
// machine-readable BENCH.json with per-experiment wall times, the
// simulated-seconds-per-second throughput and allocation counts, so
// successive revisions leave a perf trajectory.
//
// Usage:
//
//	ctmsbench                  # run everything at the default scale
//	ctmsbench -experiment E4   # one experiment
//	ctmsbench -full            # full 117-minute test-case durations
//	ctmsbench -minutes 10      # custom duration for the long scenarios
//	ctmsbench -markdown        # emit an EXPERIMENTS.md-style report
//	ctmsbench -parallel 8      # worker count (default GOMAXPROCS)
//	ctmsbench -benchout x.json # where to write the perf record ("" = off)
//	ctmsbench -scenario f.json # run custom Options scenario(s) from a file
//	ctmsbench -shards 1,2,4,8  # E18 backbone shard-scaling benchmark
//	ctmsbench -topo 4,8        # E20 mesh topology-scaling benchmark
//	ctmsbench -population      # E19 population sweep rows in BENCH.json
//	ctmsbench -lint            # time the three ctmsvet tiers, record rows
//	ctmsbench -cpuprofile c.pb # write a CPU profile of the whole run
//	ctmsbench -memprofile m.pb # write a heap profile at exit
//
// A scenario file holds one JSON-encoded ctms.Options object or an array
// of them (the format testdata/options.golden.json pins; durations accept
// "12ms"-style strings or nanosecond counts). Scenario mode runs each one
// and prints its report instead of the experiment matrix.
//
// The -shards benchmark runs the E18 eight-ring backbone once per
// requested worker count (the first count is the reference, normally 1)
// and records wall time, simsec/s, speedup and whether the fingerprint
// stayed bit-identical to the reference in BENCH.json's shard_scaling
// rows. Real speedup needs as many free cores as shard workers; on a
// smaller host the rows still gate correctness (identical=true) while
// the speedup column honestly reports the time-sharing loss.
//
// The -topo benchmark scales the E20 metro mesh across grid sides (a
// side-K entry is a K×K grid with a diagonal trunk, K² rings). Each side
// runs twice — the serial oracle and a sharded run at min(rings,
// GOMAXPROCS) workers — and records wall time, simsec/s, allocations per
// forwarded cross-ring frame (a whole-run mallocs delta over the mesh's
// forwarded-frame count, so the driver path is included — the pooled
// forwarding layer itself is pinned to zero by unit tests), the
// barrier-stall fraction and whether the sharded fingerprint stayed
// bit-identical to the serial one, in BENCH.json's topo_scaling rows.
//
// The -population benchmark runs the E19 offered-load sweep (Zipf-skewed
// demand, Poisson churn) and records one row per arrival rate — the
// admission-rate curve and the p99/p999 playout-latency tail — in
// BENCH.json's population rows. Under -compare the rows double as a
// determinism gate: at a matching rate and scale the arrival and
// admission counts must reproduce the baseline exactly.
//
// The -lint benchmark times ctmsvet's four tiers (syntactic, typed,
// interprocedural, dimensional) over this tree and records
// lint_wall_seconds rows.
// Under -compare a tier that takes more than double its baseline wall
// time fails the gate, so an analyzer that grows superlinear work is
// caught the same way a simulator perf regression is.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	ctms "repro"
	"repro/internal/analyzers"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/topo"
)

// timedResult pairs one experiment's outcome with its host wall time and,
// in serial runs, its allocation and simulated-work deltas.
// The timing lives here rather than in core.RunMatrix so internal/core
// stays clock-free (the determinism analyzer enforces that); dispatch
// still fans out across the same lab pool with collection by index.
type timedResult struct {
	core.MatrixResult
	wall       time.Duration
	mallocs    uint64   // serial runs only; 0 under parallel dispatch
	allocBytes uint64   // "
	simTime    sim.Time // "
	events     uint64   // "
}

// runMatrixTimed is core.RunMatrix plus per-experiment wall bookkeeping.
// With parallelism 1 it also brackets each experiment with memory and
// simulated-work counters; under parallel dispatch those deltas would mix
// concurrent experiments, so they are left zero there.
func runMatrixTimed(exps []core.Experiment, s core.Scale, parallelism int) []timedResult {
	pool := lab.New(parallelism)
	serial := parallelism == 1
	return lab.Map(pool, len(exps), func(i int) timedResult {
		var before runtime.MemStats
		var simBefore sim.Time
		var firedBefore uint64
		if serial {
			runtime.ReadMemStats(&before)
			simBefore = sim.TotalSimulated()
			firedBefore = sim.TotalFired()
		}
		start := time.Now()
		cmp := exps[i].Run(s)
		tr := timedResult{
			MatrixResult: core.MatrixResult{Experiment: exps[i], Comparison: cmp},
			wall:         time.Since(start),
		}
		if serial {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			tr.mallocs = after.Mallocs - before.Mallocs
			tr.allocBytes = after.TotalAlloc - before.TotalAlloc
			tr.simTime = sim.TotalSimulated() - simBefore
			tr.events = sim.TotalFired() - firedBefore
		}
		return tr
	})
}

// benchRecord is the BENCH.json schema (documented in EXPERIMENTS.md).
type benchRecord struct {
	Timestamp    string            `json:"timestamp"`
	Parallelism  int               `json:"parallelism"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	ScaleMinutes float64           `json:"scale_minutes"`
	WallSeconds  float64           `json:"wall_seconds"`
	SimSeconds   float64           `json:"sim_seconds"`
	SimSecPerSec float64           `json:"sim_seconds_per_second"`
	Mallocs      uint64            `json:"mallocs"`
	AllocBytes   uint64            `json:"alloc_bytes"`
	Events       uint64            `json:"events"`
	Failures     int               `json:"failures"`
	Experiments  []benchExperiment `json:"experiments"`
	ShardScaling []shardScaling    `json:"shard_scaling,omitempty"`
	TopoScaling  []topoScaling     `json:"topo_scaling,omitempty"`
	Population   []populationRow   `json:"population,omitempty"`
	Lint         []lintRow         `json:"lint_wall_seconds,omitempty"`
}

// lintRow is one ctmsvet tier's cost on the real tree, recorded under
// -lint so analyzer slowdowns gate like perf regressions. The typed row
// includes the go/types module load it pays for; the inter and dim rows
// are the marginal cost of their passes on the already-loaded module,
// exactly the increments `make lint` pays over the typed tier.
type lintRow struct {
	Tier        string  `json:"tier"` // syntactic | typed | inter | dim
	WallSeconds float64 `json:"wall_seconds"`
	Findings    int     `json:"findings"`
}

// populationRow is one offered-load point of the E19 population sweep:
// the admission-rate curve and the latency tail at one arrival rate.
// Arrivals/Admitted/Rejected are exact deterministic counts — under
// -compare they must reproduce the baseline's when rate and scale match.
type populationRow struct {
	Rate          float64 `json:"rate"`
	Arrivals      int     `json:"arrivals"`
	Admitted      int     `json:"admitted"`
	Rejected      int     `json:"rejected"`
	Departed      int     `json:"departed"`
	AdmissionRate float64 `json:"admission_rate"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	WorstGPM      float64 `json:"worst_glitch_per_min"`
	LatencyN      uint64  `json:"latency_samples"`
	WallSeconds   float64 `json:"wall_seconds"`
}

// shardScaling is one row of the E18 backbone scaling benchmark: the same
// internetwork at one worker count. Identical reports whether the run's
// fingerprint matched the reference (first) row — the engine's whole
// claim — and Speedup is reference wall time over this row's wall time.
type shardScaling struct {
	Shards       int     `json:"shards"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimSeconds   float64 `json:"sim_seconds"`
	SimSecPerSec float64 `json:"sim_seconds_per_second"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// topoScaling is one row of the E20 mesh topology-scaling benchmark: one
// K×K metro mesh at one worker count. AllocsPerFrame divides the run's
// whole-process mallocs delta by the frames the mesh forwarded across
// rings — an end-to-end cost-per-frame figure (the driver path included),
// not the pooled forwarding layer's own count, which unit tests pin at
// zero. StallFraction is the share of worker wall time spent blocked in
// the round barrier, the quantity the per-link windows and idle-round
// skips exist to shrink. Identical reports whether this row's fingerprint
// matched the serial (1-worker) run of the same mesh.
type topoScaling struct {
	Rings          int     `json:"rings"`
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	SimSeconds     float64 `json:"sim_seconds"`
	SimSecPerSec   float64 `json:"sim_seconds_per_second"`
	Forwarded      uint64  `json:"forwarded_frames"`
	AllocsPerFrame float64 `json:"allocs_per_forwarded_frame"`
	StallFraction  float64 `json:"barrier_stall_fraction"`
	Identical      bool    `json:"identical"`
}

// The per-experiment allocation/simulated-work columns are measured only
// when -parallel 1: under parallel dispatch the process-wide counters
// interleave across experiments, so the columns stay zero there.
type benchExperiment struct {
	ID           string  `json:"id"`
	Source       string  `json:"source"`
	Title        string  `json:"title"`
	WallSeconds  float64 `json:"wall_seconds"`
	Metrics      int     `json:"metrics"`
	OK           bool    `json:"ok"`
	Mallocs      uint64  `json:"mallocs,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes,omitempty"`
	SimSeconds   float64 `json:"sim_seconds,omitempty"`
	Events       uint64  `json:"events,omitempty"`
	SimSecPerSec float64 `json:"sim_seconds_per_second,omitempty"`
}

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code instead of os.Exit, so the profile
// writers' defers always run.
func realMain() int {
	var (
		experiment = flag.String("experiment", "", "run a single experiment (E1..E18)")
		scenario   = flag.String("scenario", "", "run ctms.Options scenario(s) from a JSON file")
		full       = flag.Bool("full", false, "run the paper's full 117-minute durations")
		minutes    = flag.Float64("minutes", 4, "scenario duration in minutes (ignored with -full)")
		seed       = flag.Int64("seed", 0, "override the default seed")
		markdown   = flag.Bool("markdown", false, "emit a markdown report")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the matrix (1 = serial)")
		benchout   = flag.String("benchout", "BENCH.json", "write the machine-readable perf record here (empty disables)")
		compare    = flag.String("compare", "", "compare this run against a baseline BENCH.json; exit nonzero on regression")
		mallocTol  = flag.Float64("malloc-tolerance", 0.10, "with -compare: allowed fractional mallocs growth over the baseline")
		speedTol   = flag.Float64("speed-tolerance", 0.50, "with -compare: allowed fractional sim_seconds_per_second loss vs the baseline")
		shards     = flag.String("shards", "", "comma-separated worker counts for the E18 shard-scaling benchmark (e.g. 1,2,4,8; empty disables)")
		topoSides  = flag.String("topo", "", "comma-separated mesh grid sides for the E20 topology-scaling benchmark (e.g. 4,8; empty disables)")
		population = flag.Bool("population", false, "run the E19 population offered-load sweep and record its rows")
		lint       = flag.Bool("lint", false, "time the four ctmsvet tiers on this tree and record lint_wall_seconds rows")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			}
		}()
	}

	if *scenario != "" {
		if err := runScenarios(*scenario, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		return 0
	}

	scale := core.Scale{Seed: *seed}
	if *full {
		scale.Duration = 117 * sim.Minute
	} else if *minutes > 0 {
		scale.Duration = sim.Time(*minutes * float64(sim.Minute))
	}

	exps := core.Experiments()
	if *experiment != "" {
		e, ok := core.ExperimentByID(strings.ToUpper(*experiment))
		if !ok {
			fmt.Fprintf(os.Stderr, "ctmsbench: unknown experiment %q\n", *experiment)
			return 2
		}
		exps = []core.Experiment{e}
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	simBefore := sim.TotalSimulated()
	firedBefore := sim.TotalFired()
	start := time.Now()

	results := runMatrixTimed(exps, scale, *parallel)

	wall := time.Since(start)
	simRun := sim.TotalSimulated() - simBefore
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	failures := 0
	rec := benchRecord{
		Timestamp:    start.UTC().Format(time.RFC3339),
		Parallelism:  *parallel,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		ScaleMinutes: float64(scale.Duration) / float64(sim.Minute),
		WallSeconds:  wall.Seconds(),
		SimSeconds:   simRun.Seconds(),
		SimSecPerSec: simRun.Seconds() / wall.Seconds(),
		Mallocs:      after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		Events:       sim.TotalFired() - firedBefore,
	}
	for _, mr := range results {
		ok := mr.Comparison.AllOK()
		if !ok {
			failures++
		}
		be := benchExperiment{
			ID:          mr.Experiment.ID,
			Source:      mr.Experiment.Source,
			Title:       mr.Experiment.Title,
			WallSeconds: mr.wall.Seconds(),
			Metrics:     len(mr.Comparison.Metrics),
			OK:          ok,
			Mallocs:     mr.mallocs,
			AllocBytes:  mr.allocBytes,
			SimSeconds:  mr.simTime.Seconds(),
			Events:      mr.events,
		}
		if mr.wall > 0 {
			be.SimSecPerSec = mr.simTime.Seconds() / mr.wall.Seconds()
		}
		rec.Experiments = append(rec.Experiments, be)
		if *markdown {
			printMarkdown(mr.Experiment, mr.Comparison)
		} else {
			fmt.Printf("=== %s (%s) %s  [wall %v]\n",
				mr.Experiment.ID, mr.Experiment.Source, mr.Experiment.Title, mr.wall.Round(time.Millisecond))
			if mr.events > 0 {
				fmt.Printf("    allocs %d  events %d  sim %.0fs (%.0f simsec/s)\n",
					mr.mallocs, mr.events, be.SimSeconds, be.SimSecPerSec)
			}
			fmt.Print(mr.Comparison.Render())
			for name, fig := range mr.Comparison.Figures {
				fmt.Printf("\n%s\n%s\n", name, fig)
			}
			fmt.Println()
		}
	}
	rec.Failures = failures

	if !*markdown {
		fmt.Printf("--- matrix wall %v, %.0f simulated s (%.0f simsec/s), parallel %d\n",
			wall.Round(time.Millisecond), rec.SimSeconds, rec.SimSecPerSec, *parallel)
	}

	// The shard-scaling benchmark runs after the matrix so the record's
	// top-level counters (and the -compare gate built on them) keep
	// measuring exactly what they always measured.
	if *shards != "" {
		rows, err := runShardScaling(*shards, scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		rec.ShardScaling = rows
		for _, row := range rows {
			fmt.Printf("--- shards %d: wall %.2fs  %.0f simsec/s  speedup %.2fx  identical=%t\n",
				row.Shards, row.WallSeconds, row.SimSecPerSec, row.Speedup, row.Identical)
		}
	}

	if *topoSides != "" {
		rows, err := runTopoScaling(*topoSides, scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		rec.TopoScaling = rows
		for _, row := range rows {
			fmt.Printf("--- topo %3d rings × %2d worker(s): wall %.2fs  %.1f simsec/s  %.1f allocs/frame  stall %.1f%%  identical=%t\n",
				row.Rings, row.Workers, row.WallSeconds, row.SimSecPerSec,
				row.AllocsPerFrame, 100*row.StallFraction, row.Identical)
		}
	}

	if *population {
		rows, err := runPopulationBench(scale, *seed, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		rec.Population = rows
		for _, row := range rows {
			fmt.Printf("--- population %4.0f/s: %d arrivals  %.3f admitted  p99=%.1fms p999=%.1fms  wall %.2fs\n",
				row.Rate, row.Arrivals, row.AdmissionRate, row.P99Ms, row.P999Ms, row.WallSeconds)
		}
	}

	if *lint {
		rows, err := runLintBench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
		rec.Lint = rows
		for _, row := range rows {
			fmt.Printf("--- lint %-9s %.3fs  %d finding(s)\n", row.Tier, row.WallSeconds, row.Findings)
		}
	}

	if *benchout != "" {
		if err := writeBench(*benchout, rec); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: %v\n", err)
			return 1
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ctmsbench: %d experiment(s) deviated from the paper's shape\n", failures)
		return 1
	}
	for _, row := range rec.ShardScaling {
		if !row.Identical {
			fmt.Fprintf(os.Stderr, "ctmsbench: %d-shard run diverged from the reference fingerprint\n", row.Shards)
			return 1
		}
	}
	for _, row := range rec.TopoScaling {
		if !row.Identical {
			fmt.Fprintf(os.Stderr, "ctmsbench: %d-ring mesh at %d workers diverged from the serial fingerprint\n",
				row.Rings, row.Workers)
			return 1
		}
	}
	if *compare != "" {
		if err := compareBench(*compare, rec, *mallocTol, *speedTol); err != nil {
			fmt.Fprintf(os.Stderr, "ctmsbench: regression vs %s:\n%v\n", *compare, err)
			return 3
		}
		fmt.Printf("--- no regression vs %s (mallocs within +%.0f%%, simsec/s within -%.0f%%)\n",
			*compare, 100**mallocTol, 100**speedTol)
	}
	return 0
}

// runShardScaling runs the E18 backbone once per requested worker count.
// The first count is the reference (normally 1, the serial oracle): its
// fingerprint is what every other row must reproduce and its wall time is
// the speedup denominator. The simulated duration is the matrix scale
// capped at 10 s so the benchmark stays a minute-scale addendum.
func runShardScaling(list string, scale core.Scale, seed int64) ([]shardScaling, error) {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 || w > 64 {
			return nil, fmt.Errorf("-shards: bad worker count %q", part)
		}
		counts = append(counts, w)
	}
	dur := 10 * sim.Second
	if scale.Duration > 0 && scale.Duration < dur {
		dur = scale.Duration
	}
	base := seed
	if base == 0 {
		base = 1991
	}
	spec := core.E18Topology(8, core.SweepSeed(base, 18), dur)

	var rows []shardScaling
	var refFingerprint string
	var refWall float64
	for i, w := range counts {
		n, err := topo.Build(spec)
		if err != nil {
			return nil, err
		}
		simBefore := sim.TotalSimulated()
		start := time.Now()
		res := n.Run(w)
		wallSec := time.Since(start).Seconds()
		simSec := (sim.TotalSimulated() - simBefore).Seconds()
		fp := res.Fingerprint()
		if i == 0 {
			refFingerprint = fp
			refWall = wallSec
		}
		row := shardScaling{
			Shards:      w,
			WallSeconds: wallSec,
			SimSeconds:  simSec,
			Identical:   fp == refFingerprint,
		}
		if wallSec > 0 {
			row.SimSecPerSec = simSec / wallSec
			row.Speedup = refWall / wallSec
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runTopoScaling runs the E20 metro mesh once serially and once sharded
// per requested grid side. The serial run is the bit-identity reference
// and the first row of each pair; the sharded run uses min(rings,
// GOMAXPROCS) workers with a wall clock injected so the barrier-stall
// column measures something. The simulated duration is the matrix scale
// capped at 2 s (E20's own full scale) so even the 16×16 mesh stays a
// minute-scale addendum.
func runTopoScaling(list string, scale core.Scale, seed int64) ([]topoScaling, error) {
	var sides []int
	for _, part := range strings.Split(list, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 2 || k > 16 {
			return nil, fmt.Errorf("-topo: bad grid side %q (want 2..16)", part)
		}
		sides = append(sides, k)
	}
	dur := 2 * sim.Second
	if scale.Duration > 0 && scale.Duration < dur {
		dur = scale.Duration
	}
	base := seed
	if base == 0 {
		base = 1991
	}
	topo.SetWallClock(func() int64 { return time.Now().UnixNano() })
	defer topo.SetWallClock(nil)

	var rows []topoScaling
	for _, side := range sides {
		spec := core.E20Topology(side, core.SweepSeed(base, 20), dur)
		rings := spec.Rings
		// The sharded row runs at least 4 workers even on a smaller host:
		// bit-identity must hold under time-sharing too (only the speed
		// columns need real cores), so a 1-core runner still exercises the
		// barrier protocol instead of silently degenerating to serial.
		workers := []int{1, min(rings, max(4, runtime.GOMAXPROCS(0)))}
		var refFingerprint string
		for _, w := range workers {
			n, err := topo.Build(spec)
			if err != nil {
				return nil, err
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			simBefore := sim.TotalSimulated()
			start := time.Now()
			res := n.Run(w)
			wallSec := time.Since(start).Seconds()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			simSec := (sim.TotalSimulated() - simBefore).Seconds()
			fp := res.Fingerprint()
			if w == 1 {
				refFingerprint = fp
			}
			var fwd uint64
			for _, l := range res.Links {
				fwd += l.A.Forwarded + l.B.Forwarded
			}
			row := topoScaling{
				Rings:         rings,
				Workers:       w,
				WallSeconds:   wallSec,
				SimSeconds:    simSec,
				Forwarded:     fwd,
				StallFraction: res.Engine.StallFraction(w),
				Identical:     fp == refFingerprint,
			}
			if wallSec > 0 {
				row.SimSecPerSec = simSec / wallSec
			}
			if fwd > 0 {
				row.AllocsPerFrame = float64(after.Mallocs-before.Mallocs) / float64(fwd)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// populationRates is the E19 offered-load sweep ctmsbench records:
// light load, the budget crossover, and deep overload.
var populationRates = []float64{1, 4, 16, 32}

// runPopulationBench runs the E19 population sweep once and converts its
// points to BENCH.json rows. The simulated duration is the matrix scale
// capped at 12 s (E19's own cap), and the per-row wall time is the whole
// sweep's wall split by simulated share — each point is one simulation,
// so finer attribution would need per-run clocks the determinism
// analyzer keeps out of internal/core.
func runPopulationBench(scale core.Scale, seed int64, parallel int) ([]populationRow, error) {
	dur := 12 * sim.Second
	if scale.Duration > 0 && scale.Duration < dur {
		dur = scale.Duration
	}
	base := seed
	if base == 0 {
		base = 1991
	}
	start := time.Now()
	points, err := core.PopulationSweep(core.SweepSeed(base, 19), dur, populationRates, parallel)
	if err != nil {
		return nil, err
	}
	wallEach := time.Since(start).Seconds() / float64(len(points))
	rows := make([]populationRow, len(points))
	for i, p := range points {
		rows[i] = populationRow{
			Rate:          p.OfferedPerSec,
			Arrivals:      p.Arrivals,
			Admitted:      p.Admitted,
			Rejected:      p.Rejected,
			Departed:      p.Departed,
			AdmissionRate: p.AdmissionRate(),
			P99Ms:         p.P99Us / 1000,
			P999Ms:        p.P999Us / 1000,
			WorstGPM:      p.WorstGPM,
			LatencyN:      p.LatencyN,
			WallSeconds:   wallEach,
		}
	}
	return rows, nil
}

// runLintBench times the four ctmsvet tiers over the repository the
// benchmark runs in, one row each. The syntactic tier is a pure-AST
// walk, run without units to mirror `make lint`'s demotion of the
// syntactic units pass in favor of the dim tier; the typed row carries
// the go/types load of the whole module; the inter and dim rows reuse
// that load, so each measures only what its own pass adds — the same
// split `make lint` pays via cmd/ctmsvet.
func runLintBench() ([]lintRow, error) {
	root, err := analyzers.FindModuleRoot(".")
	if err != nil {
		return nil, fmt.Errorf("-lint: %w", err)
	}

	start := time.Now()
	syn, err := analyzers.RunRepo(root, "determinism", "exhaustive")
	if err != nil {
		return nil, fmt.Errorf("-lint syntactic tier: %w", err)
	}
	rows := []lintRow{{Tier: "syntactic", WallSeconds: time.Since(start).Seconds(), Findings: len(syn)}}

	start = time.Now()
	mod, err := analyzers.LoadTypedModule(root)
	if err != nil {
		return nil, fmt.Errorf("-lint typed tier: %w", err)
	}
	typed, err := analyzers.RunModuleTyped(mod)
	if err != nil {
		return nil, fmt.Errorf("-lint typed tier: %w", err)
	}
	rows = append(rows, lintRow{Tier: "typed", WallSeconds: time.Since(start).Seconds(), Findings: len(typed)})

	start = time.Now()
	inter, err := analyzers.RunModuleInter(mod)
	if err != nil {
		return nil, fmt.Errorf("-lint inter tier: %w", err)
	}
	rows = append(rows, lintRow{Tier: "inter", WallSeconds: time.Since(start).Seconds(), Findings: len(inter)})

	start = time.Now()
	dim, err := analyzers.RunModuleDim(mod)
	if err != nil {
		return nil, fmt.Errorf("-lint dim tier: %w", err)
	}
	rows = append(rows, lintRow{Tier: "dim", WallSeconds: time.Since(start).Seconds(), Findings: len(dim)})
	return rows, nil
}

// compareBench checks the just-produced record against a baseline
// BENCH.json. It fails when mallocs grew past the malloc tolerance, when
// simulated-seconds-per-second fell past the speed tolerance, or when
// either record lacks a measured (nonzero) sim_seconds — a zero there
// means the gate would be comparing noise, the exact bug the counter
// rework fixed. Wall-clock speed is compared loosely by design: CI
// machines vary, but an order-of-magnitude slide or a silent return of
// per-event allocation should stop a merge.
func compareBench(path string, rec benchRecord, mallocTol, speedTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	var problems []string
	if base.SimSeconds <= 0 {
		problems = append(problems, fmt.Sprintf("baseline sim_seconds is %v (not a measured record)", base.SimSeconds))
	}
	if rec.SimSeconds <= 0 {
		problems = append(problems, fmt.Sprintf("this run's sim_seconds is %v (simulated-time accounting broken)", rec.SimSeconds))
	}
	if limit := float64(base.Mallocs) * (1 + mallocTol); base.Mallocs > 0 && float64(rec.Mallocs) > limit {
		problems = append(problems, fmt.Sprintf("mallocs %d exceeds baseline %d by more than %.0f%% (limit %.0f)",
			rec.Mallocs, base.Mallocs, 100*mallocTol, limit))
	}
	if floor := base.SimSecPerSec * (1 - speedTol); base.SimSecPerSec > 0 && rec.SimSecPerSec < floor {
		problems = append(problems, fmt.Sprintf("sim_seconds_per_second %.1f fell below baseline %.1f by more than %.0f%% (floor %.1f)",
			rec.SimSecPerSec, base.SimSecPerSec, 100*speedTol, floor))
	}
	// Shard-scaling rows are compared only when both records carry them,
	// so a baseline regenerated without -shards (or one predating the
	// sharded engine) never trips the gate. Where a shard count exists on
	// both sides the run must stay bit-identical and hold the same speed
	// floor the matrix holds; the speedup column is informational (it
	// measures the host's free cores, not the code).
	for _, row := range rec.ShardScaling {
		for _, b := range base.ShardScaling {
			if b.Shards != row.Shards {
				continue
			}
			if !row.Identical {
				problems = append(problems, fmt.Sprintf(
					"%d-shard run no longer bit-identical to the serial oracle", row.Shards))
			}
			if floor := b.SimSecPerSec * (1 - speedTol); b.SimSecPerSec > 0 && row.SimSecPerSec < floor {
				problems = append(problems, fmt.Sprintf(
					"%d-shard sim_seconds_per_second %.1f fell below baseline %.1f (floor %.1f)",
					row.Shards, row.SimSecPerSec, b.SimSecPerSec, floor))
			}
		}
	}
	// Topo-scaling rows follow the shard-scaling rule: compared only where
	// a (rings, workers) pair exists in both records, so baselines
	// regenerated without -topo never trip the gate. A matched row must be
	// bit-identical to its serial oracle and hold the matrix speed floor;
	// the allocation column additionally gates with the malloc tolerance —
	// allocs per forwarded frame is a per-unit cost, so host variance
	// cannot inflate it the way wall time inflates raw counters.
	for _, row := range rec.TopoScaling {
		for _, b := range base.TopoScaling {
			if b.Rings != row.Rings || b.Workers != row.Workers {
				continue
			}
			if !row.Identical {
				problems = append(problems, fmt.Sprintf(
					"%d-ring mesh at %d workers no longer bit-identical to the serial oracle", row.Rings, row.Workers))
			}
			if floor := b.SimSecPerSec * (1 - speedTol); b.SimSecPerSec > 0 && row.SimSecPerSec < floor {
				problems = append(problems, fmt.Sprintf(
					"%d-ring mesh at %d workers: sim_seconds_per_second %.1f fell below baseline %.1f (floor %.1f)",
					row.Rings, row.Workers, row.SimSecPerSec, b.SimSecPerSec, floor))
			}
			if limit := b.AllocsPerFrame * (1 + mallocTol); b.AllocsPerFrame > 0 && row.AllocsPerFrame > limit {
				problems = append(problems, fmt.Sprintf(
					"%d-ring mesh at %d workers: %.2f allocs per forwarded frame exceeds baseline %.2f by more than %.0f%% (limit %.2f)",
					row.Rings, row.Workers, row.AllocsPerFrame, b.AllocsPerFrame, 100*mallocTol, limit))
			}
		}
	}
	// Lint rows gate analyzer cost: where a tier exists in both records
	// its wall time may at most double over the baseline (plus half a
	// second of absolute slack, so a 30 ms syntactic pass on a noisy
	// runner can't trip the gate). A doubled tier means an analyzer grew
	// superlinear work — the regression class the row exists to catch —
	// while honest host-to-host variance stays well inside 2x. Findings
	// are informational here; `make lint` is the correctness gate.
	for _, row := range rec.Lint {
		for _, b := range base.Lint {
			if b.Tier != row.Tier {
				continue
			}
			if limit := 2*b.WallSeconds + 0.5; row.WallSeconds > limit {
				problems = append(problems, fmt.Sprintf(
					"lint %s tier took %.2fs, more than double the baseline %.2fs (limit %.2fs)",
					row.Tier, row.WallSeconds, b.WallSeconds, limit))
			}
		}
	}
	// Population rows gate determinism: an arrival schedule is a pure
	// function of (seed, spec, duration), so at a matching rate — and
	// only when both records ran the same scale, since duration changes
	// the schedule — the exact counts must reproduce. A baseline without
	// population rows never trips the gate.
	if base.ScaleMinutes == rec.ScaleMinutes {
		for _, row := range rec.Population {
			for _, b := range base.Population {
				if b.Rate != row.Rate {
					continue
				}
				if row.Arrivals != b.Arrivals || row.Admitted != b.Admitted || row.Rejected != b.Rejected {
					problems = append(problems, fmt.Sprintf(
						"population %g/s: counts %d/%d/%d (arrivals/admitted/rejected) no longer reproduce baseline %d/%d/%d",
						row.Rate, row.Arrivals, row.Admitted, row.Rejected,
						b.Arrivals, b.Admitted, b.Rejected))
				}
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// runScenarios loads a JSON scenario file (one ctms.Options or an array)
// and runs each scenario, printing its report. A nonzero seed overrides
// every scenario's own.
func runScenarios(path string, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	scenarios, err := ctms.LoadScenarios(data)
	if err != nil {
		return err
	}
	for i, opts := range scenarios {
		if seed != 0 {
			opts.Seed = seed
		}
		start := time.Now()
		res, err := ctms.Run(opts)
		if err != nil {
			return fmt.Errorf("scenario %d (%s): %w", i, opts.Name, err)
		}
		fmt.Printf("=== scenario %s  [wall %v]\n%s\n", res.Name, time.Since(start).Round(time.Millisecond), res.Report)
	}
	return nil
}

func writeBench(path string, rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printMarkdown(e core.Experiment, cmp *core.Comparison) {
	fmt.Printf("### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
	fmt.Println("| metric | paper | measured | match |")
	fmt.Println("|---|---|---|---|")
	for _, m := range cmp.Metrics {
		mark := "yes"
		if !m.OK {
			mark = "NO"
		}
		fmt.Printf("| %s | %s | %s | %s |\n", m.Name, m.Paper, m.Measured, mark)
	}
	for _, n := range cmp.Notes {
		fmt.Printf("\n_%s_\n", n)
	}
	for name, fig := range cmp.Figures {
		fmt.Printf("\n%s\n\n```\n%s```\n", name, fig)
	}
	fmt.Println()
}
