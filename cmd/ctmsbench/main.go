// Command ctmsbench regenerates every table and figure of the paper's
// evaluation: it runs the reproduction matrix (experiments E1–E16 of
// DESIGN.md) and prints paper-vs-measured comparisons plus ASCII versions
// of Figures 5-2, 5-3 and 5-4.
//
// Usage:
//
//	ctmsbench                  # run everything at the default scale
//	ctmsbench -experiment E4   # one experiment
//	ctmsbench -full            # full 117-minute test-case durations
//	ctmsbench -minutes 10      # custom duration for the long scenarios
//	ctmsbench -markdown        # emit an EXPERIMENTS.md-style report
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "run a single experiment (E1..E16)")
		full       = flag.Bool("full", false, "run the paper's full 117-minute durations")
		minutes    = flag.Float64("minutes", 4, "scenario duration in minutes (ignored with -full)")
		seed       = flag.Int64("seed", 0, "override the default seed")
		markdown   = flag.Bool("markdown", false, "emit a markdown report")
	)
	flag.Parse()

	scale := core.Scale{Seed: *seed}
	if *full {
		scale.Duration = 117 * sim.Minute
	} else if *minutes > 0 {
		scale.Duration = sim.Time(*minutes * float64(sim.Minute))
	}

	exps := core.Experiments()
	if *experiment != "" {
		e, ok := core.ExperimentByID(strings.ToUpper(*experiment))
		if !ok {
			fmt.Fprintf(os.Stderr, "ctmsbench: unknown experiment %q\n", *experiment)
			os.Exit(2)
		}
		exps = []core.Experiment{e}
	}

	failures := 0
	for _, e := range exps {
		start := time.Now()
		cmp := e.Run(scale)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *markdown {
			printMarkdown(e, cmp)
		} else {
			fmt.Printf("=== %s (%s) %s  [wall %v]\n", e.ID, e.Source, e.Title, elapsed)
			fmt.Print(cmp.Render())
			for name, fig := range cmp.Figures {
				fmt.Printf("\n%s\n%s\n", name, fig)
			}
			fmt.Println()
		}
		if !cmp.AllOK() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "ctmsbench: %d experiment(s) deviated from the paper's shape\n", failures)
		os.Exit(1)
	}
}

func printMarkdown(e core.Experiment, cmp *core.Comparison) {
	fmt.Printf("### %s — %s (%s)\n\n", e.ID, e.Title, e.Source)
	fmt.Println("| metric | paper | measured | match |")
	fmt.Println("|---|---|---|---|")
	for _, m := range cmp.Metrics {
		mark := "yes"
		if !m.OK {
			mark = "NO"
		}
		fmt.Printf("| %s | %s | %s | %s |\n", m.Name, m.Paper, m.Measured, mark)
	}
	for _, n := range cmp.Notes {
		fmt.Printf("\n_%s_\n", n)
	}
	for name, fig := range cmp.Figures {
		fmt.Printf("\n%s\n\n```\n%s```\n", name, fig)
	}
	fmt.Println()
}
