// Command ctmsvet runs the repository's custom static-analysis suite
// (see DESIGN.md §7): the syntactic tier — determinism, units,
// exhaustive — and the typed tier — mbuflife, locking, hotpath — of
// internal/analyzers. It is the `make lint` step of `make ci`.
//
// Usage:
//
//	ctmsvet                     # analyze the enclosing module, both tiers
//	ctmsvet -root DIR           # analyze the module rooted at DIR
//	ctmsvet -typed=false        # fast syntactic pass only (make lint-fast)
//	ctmsvet -analyzers a,b,c    # run only the named analyzers
//	ctmsvet -json               # machine-readable diagnostics on stdout
//	ctmsvet -out findings.json  # also write the JSON artifact to a file
//	ctmsvet -baseline accepted.json  # fail only on findings not in the baseline
//
// Exit status: 0 with no findings, 1 when any diagnostic survives
// suppression (and the baseline, if one is given), 2 on a usage or load
// error. Each finding prints as file:line:col: analyzer: message, so CI
// output is directly actionable. A finding can be suppressed in place
// with
//
//	//ctmsvet:allow <analyzer> <reason>
//
// where the reason is mandatory. The -baseline file is a prior -json or
// -out artifact: its findings are matched by analyzer, root-relative
// file and message (line-insensitive), so a tree with accepted debt
// still gates on anything new.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command body, factored for the CLI contract test: parse
// args, run the selected tiers, subtract the baseline, emit, and return
// the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctmsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root         = fs.String("root", "", "module root to analyze (default: walk up from the working directory)")
		jsonMode     = fs.Bool("json", false, "emit diagnostics as a JSON array")
		analyzerList = fs.String("analyzers", "", "comma-separated analyzers to run (default: all; see -list)")
		baselinePath = fs.String("baseline", "", "accepted-findings JSON (a prior -json/-out artifact); only uncovered findings fail")
		outPath      = fs.String("out", "", "write the findings JSON artifact to this file")
		typed        = fs.Bool("typed", true, "run the typed tier (mbuflife, locking, hotpath); =false is the fast syntactic pass")
		list         = fs.Bool("list", false, "print the analyzer names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(analyzers.AnalyzerNames(), "\n"))
		return 0
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = analyzers.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
	}

	var only []string
	for _, n := range strings.Split(*analyzerList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			only = append(only, n)
		}
	}

	diags, err := analyzers.RunRepo(dir, only...)
	if err != nil {
		fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
		return 2
	}
	if *typed {
		tdiags, err := analyzers.RunRepoTyped(dir, only...)
		if err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			return 2
		}
		diags = analyzers.MergeDiagnostics(diags, tdiags)
	}
	if *baselinePath != "" {
		b, err := analyzers.LoadBaseline(*baselinePath, dir)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		diags = b.Filter(diags, dir)
	}

	if *outPath != "" {
		artifact, err := analyzers.MarshalJSONDiagnostics(diags)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*outPath, append(artifact, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
	}

	if *jsonMode {
		out, err := analyzers.MarshalJSONDiagnostics(diags)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonMode {
			fmt.Fprintf(stderr, "ctmsvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
