// Command ctmsvet runs the repository's custom static-analysis suite:
// the determinism, units and exhaustive analyzers of internal/analyzers
// (see DESIGN.md §7). It is the `make lint` step of `make ci`.
//
// Usage:
//
//	ctmsvet             # analyze the enclosing module
//	ctmsvet -root DIR   # analyze the module rooted at DIR
//	ctmsvet -json       # machine-readable diagnostics
//
// Exit status: 0 with no findings, 1 when any diagnostic survives
// suppression, 2 on a usage or load error. Each finding prints as
// file:line:col: analyzer: message, so CI output is directly actionable.
// A finding can be suppressed in place with
//
//	//ctmsvet:allow <analyzer> <reason>
//
// where the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analyzers"
)

func main() {
	var (
		root     = flag.String("root", "", "module root to analyze (default: walk up from the working directory)")
		jsonMode = flag.Bool("json", false, "emit diagnostics as a JSON array")
	)
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = analyzers.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsvet: %v\n", err)
			os.Exit(2)
		}
	}

	diags, err := analyzers.RunRepo(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctmsvet: %v\n", err)
		os.Exit(2)
	}

	if *jsonMode {
		out, err := analyzers.MarshalJSONDiagnostics(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmsvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonMode {
			fmt.Fprintf(os.Stderr, "ctmsvet: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
