// Command ctmsvet runs the repository's custom static-analysis suite
// (see DESIGN.md §7): the syntactic tier — determinism, units,
// exhaustive — the typed tier — mbuflife, locking, hotpath — the
// interprocedural tier — shardowned, seedflow, barrier — and the
// dimensional-inference tier — dim — of internal/analyzers. It is the
// `make lint` step of `make ci`.
//
// When the dim tier runs (the default), the syntactic units analyzer is
// demoted: dim subsumes it with interprocedural dimension propagation,
// so running both would double-report clean-tree findings. The fast
// -typed=false path (make lint-fast) keeps units as the cheap stand-in.
//
// Usage:
//
//	ctmsvet                     # analyze the enclosing module, all tiers
//	ctmsvet -root DIR           # analyze the module rooted at DIR
//	ctmsvet -typed=false        # fast syntactic pass only (make lint-fast)
//	ctmsvet -inter=false        # skip the interprocedural tier
//	ctmsvet -dim=false          # skip the dimensional-inference tier
//	ctmsvet -analyzers a,b,c    # run only the named analyzers
//	ctmsvet -changed HEAD       # report only findings in files differing from a git ref
//	ctmsvet -json               # machine-readable diagnostics on stdout
//	ctmsvet -out findings.json  # also write the JSON artifact to a file
//	ctmsvet -baseline accepted.json  # fail only on findings not in the baseline
//
// Exit status: 0 with no findings, 1 when any diagnostic survives
// suppression (and the baseline, if one is given), 2 on a usage or load
// error. Each finding prints as file:line:col: analyzer: message, so CI
// output is directly actionable. A finding can be suppressed in place
// with
//
//	//ctmsvet:allow <analyzer> <reason>
//
// where the reason is mandatory. The -baseline file is a prior -json or
// -out artifact: its findings are matched by analyzer, root-relative
// file and message (line-insensitive), so a tree with accepted debt
// still gates on anything new.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command body, factored for the CLI contract test: parse
// args, run the selected tiers, subtract the baseline, emit, and return
// the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ctmsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root         = fs.String("root", "", "module root to analyze (default: walk up from the working directory)")
		jsonMode     = fs.Bool("json", false, "emit diagnostics as a JSON array")
		analyzerList = fs.String("analyzers", "", "comma-separated analyzers to run (default: all; see -list)")
		baselinePath = fs.String("baseline", "", "accepted-findings JSON (a prior -json/-out artifact); only uncovered findings fail")
		outPath      = fs.String("out", "", "write the findings JSON artifact to this file")
		typed        = fs.Bool("typed", true, "run the typed tier (mbuflife, locking, hotpath); =false is the fast syntactic pass")
		inter        = fs.Bool("inter", true, "run the interprocedural tier (shardowned, seedflow, barrier); needs -typed")
		dim          = fs.Bool("dim", true, "run the dimensional-inference tier (dim); needs -typed; demotes the syntactic units analyzer")
		changedRef   = fs.String("changed", "", "report only findings in files differing from this git ref (plus untracked files)")
		list         = fs.Bool("list", false, "print the analyzer names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(analyzers.AnalyzerNames(), "\n"))
		return 0
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = analyzers.FindModuleRoot(".")
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
	}
	// Diagnostics carry the paths the loader saw; absolutize the root so
	// -changed's git paths compare equal to them.
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}

	var only []string
	for _, n := range strings.Split(*analyzerList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			only = append(only, n)
		}
	}

	var changed map[string]bool
	if *changedRef != "" {
		var err error
		changed, err = changedFiles(dir, *changedRef)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		if len(changed) == 0 {
			// Nothing differs from the ref: the findings set is empty
			// by construction, so skip the analysis entirely — this is
			// what makes `make lint-fast` sub-second on a clean tree.
			if *jsonMode {
				fmt.Fprintln(stdout, "[]")
			}
			if *outPath != "" {
				if err := os.WriteFile(*outPath, []byte("[]\n"), 0o644); err != nil {
					fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
					return 2
				}
			}
			return 0
		}
	}

	// With the dim tier on and no explicit selection, the syntactic
	// units analyzer is demoted: dim propagates the same name-derived
	// dimensions interprocedurally, so units would double-report every
	// clean-tree finding. An explicit -analyzers selection is honored
	// verbatim either way.
	syntacticOnly := only
	if len(only) == 0 && *typed && *dim {
		syntacticOnly = []string{"determinism", "exhaustive"}
	}
	diags, err := analyzers.RunRepo(dir, syntacticOnly...)
	if err != nil {
		fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
		return 2
	}
	if *typed {
		// All type-checked tiers share one module load: the source
		// importer pass dominates their cost.
		mod, err := analyzers.LoadTypedModule(dir)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: typed pass: %v\n", err)
			return 2
		}
		tdiags, err := analyzers.RunModuleTyped(mod, only...)
		if err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			return 2
		}
		diags = analyzers.MergeDiagnostics(diags, tdiags)
		if *inter {
			idiags, err := analyzers.RunModuleInter(mod, only...)
			if err != nil {
				fmt.Fprintf(stderr, "%v\n", err)
				return 2
			}
			diags = analyzers.MergeDiagnostics(diags, idiags)
		}
		if *dim {
			ddiags, err := analyzers.RunModuleDim(mod, only...)
			if err != nil {
				fmt.Fprintf(stderr, "%v\n", err)
				return 2
			}
			diags = analyzers.MergeDiagnostics(diags, ddiags)
		}
	}
	if changed != nil {
		var kept []analyzers.Diagnostic
		for _, d := range diags {
			if changed[d.File] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	if *baselinePath != "" {
		b, err := analyzers.LoadBaseline(*baselinePath, dir)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		diags = b.Filter(diags, dir)
	}

	if *outPath != "" {
		artifact, err := analyzers.MarshalJSONDiagnostics(diags)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*outPath, append(artifact, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
	}

	if *jsonMode {
		out, err := analyzers.MarshalJSONDiagnostics(diags)
		if err != nil {
			fmt.Fprintf(stderr, "ctmsvet: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonMode {
			fmt.Fprintf(stderr, "ctmsvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// changedFiles returns the set of .go files under root that differ from
// the git ref — modified/added relative to the ref plus untracked files
// — as absolute paths, for filtering diagnostics. Analysis still runs
// over the whole module (an interprocedural finding in a changed file
// can depend on unchanged code), only the report is restricted.
//
// The diff runs with --name-status -M so renames are followed: an R row
// lists old path then new, and the findings live in the new one.
// (--name-only would contribute only the pre-rename path, silently
// skipping every finding in a renamed file.)
func changedFiles(root, ref string) (map[string]bool, error) {
	top, err := gitOut(root, "rev-parse", "--show-toplevel")
	if err != nil {
		return nil, fmt.Errorf("-changed %s: %v", ref, err)
	}
	diff, err := gitOut(root, "diff", "--name-status", "-M", ref)
	if err != nil {
		return nil, fmt.Errorf("-changed %s: %v", ref, err)
	}
	untracked, err := gitOut(root, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, fmt.Errorf("-changed %s: %v", ref, err)
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	changed := make(map[string]bool)
	add := func(line string) {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasSuffix(line, ".go") {
			return
		}
		abs := filepath.Join(top, filepath.FromSlash(line))
		// Only files inside the analyzed module matter.
		if rel, err := filepath.Rel(absRoot, abs); err != nil || strings.HasPrefix(rel, "..") {
			return
		}
		changed[abs] = true
	}
	for _, line := range strings.Split(diff, "\n") {
		// --name-status rows are status<TAB>path, with rename/copy rows
		// status<TAB>old<TAB>new; the file that exists now is the last
		// column.
		cols := strings.Split(line, "\t")
		if len(cols) < 2 {
			continue
		}
		status := strings.TrimSpace(cols[0])
		if strings.HasPrefix(status, "D") {
			continue // a deleted file has no findings to report
		}
		add(cols[len(cols)-1])
	}
	for _, line := range strings.Split(untracked, "\n") {
		add(line)
	}
	return changed, nil
}

// gitOut runs one git subcommand in dir and returns trimmed stdout.
func gitOut(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("git %s: %s", strings.Join(args, " "), strings.TrimSpace(string(ee.Stderr)))
		}
		return "", fmt.Errorf("git %s: %v", strings.Join(args, " "), err)
	}
	return strings.TrimSpace(string(out)), nil
}
