package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// scratchModule writes a tiny module whose root package carries exactly
// one exhaustive violation (a //ctmsvet:enum switch missing a value).
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

// Phase is a lifecycle enum.
//
//ctmsvet:enum
type Phase int

const (
	Idle Phase = iota
	Running
	Done
)

func describe(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	case Running:
		return "running"
	}
	return "?"
}

func main() { _ = describe(Idle) }
`)
	return dir
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIRealTreeComesClean(t *testing.T) {
	root, err := analyzers.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-root", root, "-typed=false")
	if code != 0 {
		t.Fatalf("exit %d on the real tree\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("expected no output on a clean tree, got:\n%s", stdout)
	}
}

func TestCLIFindingExitsOne(t *testing.T) {
	dir := scratchModule(t)
	code, stdout, stderr := runCLI(t, "-root", dir, "-typed=false")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "switch over Phase misses Done") {
		t.Fatalf("missing finding in output:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Fatalf("missing summary on stderr:\n%s", stderr)
	}
}

func TestCLIAnalyzersFlag(t *testing.T) {
	dir := scratchModule(t)

	// Selecting an analyzer that cannot fire here passes.
	code, _, stderr := runCLI(t, "-root", dir, "-typed=false", "-analyzers", "determinism,units")
	if code != 0 {
		t.Fatalf("exit %d with exhaustive deselected\nstderr:\n%s", code, stderr)
	}

	// Selecting the firing analyzer still fails.
	code, stdout, _ := runCLI(t, "-root", dir, "-typed=false", "-analyzers", "exhaustive")
	if code != 1 || !strings.Contains(stdout, "exhaustive:") {
		t.Fatalf("exit %d, stdout:\n%s", code, stdout)
	}

	// Unknown names are a usage error naming the valid set.
	code, _, stderr = runCLI(t, "-root", dir, "-typed=false", "-analyzers", "bogus")
	if code != 2 {
		t.Fatalf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") || !strings.Contains(stderr, "mbuflife") {
		t.Fatalf("error should list the valid analyzers:\n%s", stderr)
	}
}

func TestCLIBaselineMode(t *testing.T) {
	dir := scratchModule(t)

	// Record the current findings as the accepted baseline.
	code, stdout, _ := runCLI(t, "-root", dir, "-typed=false", "-json")
	if code != 1 {
		t.Fatalf("exit %d recording baseline, want 1", code)
	}
	baseline := filepath.Join(t.TempDir(), "accepted.json")
	if err := os.WriteFile(baseline, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}

	// Under the baseline the same tree gates clean.
	code, stdout, stderr := runCLI(t, "-root", dir, "-typed=false", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("exit %d under baseline\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// A new finding is not covered: add a second bad switch with a
	// different message and the gate fails again.
	extra := `package main

//ctmsvet:enum
type Knob int

const (
	KnobA Knob = iota
	KnobB
)

func turn(k Knob) int {
	switch k {
	case KnobA:
		return 0
	}
	return 1
}
`
	if err := os.WriteFile(filepath.Join(dir, "extra.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-root", dir, "-typed=false", "-baseline", baseline)
	if code != 1 {
		t.Fatalf("exit %d with a new finding under baseline, want 1", code)
	}
	if !strings.Contains(stdout, "Knob misses KnobB") || strings.Contains(stdout, "Phase misses Done") {
		t.Fatalf("only the new finding should survive the baseline:\n%s", stdout)
	}
}

func TestCLIOutArtifact(t *testing.T) {
	dir := scratchModule(t)
	artifact := filepath.Join(t.TempDir(), "ctmsvet.json")
	code, _, _ := runCLI(t, "-root", dir, "-typed=false", "-out", artifact)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analyzers.Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		t.Fatalf("artifact is not a diagnostics array: %v\n%s", err, data)
	}
	if len(diags) != 1 || diags[0].Analyzer != "exhaustive" {
		t.Fatalf("unexpected artifact contents: %+v", diags)
	}
}

func TestCLIListFlag(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range analyzers.AnalyzerNames() {
		if !strings.Contains(stdout, name) {
			t.Fatalf("-list output missing %q:\n%s", name, stdout)
		}
	}
	// The three tiers are all represented.
	for _, name := range []string{"determinism", "mbuflife", "shardowned", "seedflow", "barrier"} {
		if !strings.Contains(stdout, name) {
			t.Fatalf("-list output missing tier representative %q:\n%s", name, stdout)
		}
	}
}

// gitIn runs git in dir, failing the test on error.
func gitIn(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	cmd.Env = append(os.Environ(),
		"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
		"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// TestCLIChangedFlag pins the -changed contract: findings are
// restricted to files differing from the ref, and a tree with no
// changed Go files short-circuits to success without analyzing.
func TestCLIChangedFlag(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	dir := scratchModule(t)
	gitIn(t, dir, "init", "-q")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-qm", "seed")

	// Nothing differs from HEAD: exit 0 even though the tree has a
	// finding — the changed set is empty, so nothing is reported.
	code, stdout, stderr := runCLI(t, "-root", dir, "-typed=false", "-changed", "HEAD")
	if code != 0 {
		t.Fatalf("exit %d on unchanged tree\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// Add a second violating file without committing: only the new
	// file's finding is reported, the committed one stays filtered.
	extra := `package main

//ctmsvet:enum
type Dial int

const (
	DialA Dial = iota
	DialB
)

func spin(d Dial) int {
	switch d {
	case DialA:
		return 0
	}
	return 1
}
`
	if err := os.WriteFile(filepath.Join(dir, "extra.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-root", dir, "-typed=false", "-changed", "HEAD")
	if code != 1 {
		t.Fatalf("exit %d with an uncommitted violation, want 1", code)
	}
	if !strings.Contains(stdout, "Dial misses DialB") || strings.Contains(stdout, "Phase misses Done") {
		t.Fatalf("-changed should report only the uncommitted file's finding:\n%s", stdout)
	}

	// An unusable ref is a usage error, not a silent full run.
	code, _, stderr = runCLI(t, "-root", dir, "-typed=false", "-changed", "no-such-ref")
	if code != 2 || !strings.Contains(stderr, "no-such-ref") {
		t.Fatalf("exit %d for a bad ref (stderr %q), want 2 naming the ref", code, stderr)
	}
}

// TestCLIChangedFollowsRenames: a rename row in the diff contributes
// its new path to the changed set. Before this was fixed, an R row added
// only the old path — which no finding carries — so violations in a
// renamed file silently vanished from the gate.
func TestCLIChangedFollowsRenames(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	dir := scratchModule(t)
	gitIn(t, dir, "init", "-q")
	gitIn(t, dir, "add", ".")
	gitIn(t, dir, "commit", "-qm", "seed")

	// Rename the violating file and commit, so diffing against the first
	// commit produces an R row rather than a delete/add pair.
	gitIn(t, dir, "mv", "main.go", "described.go")
	gitIn(t, dir, "commit", "-qm", "rename")

	code, stdout, stderr := runCLI(t, "-root", dir, "-typed=false", "-changed", "HEAD~1")
	if code != 1 {
		t.Fatalf("exit %d, want 1: the renamed file's finding must survive the filter\nstdout:\n%s\nstderr:\n%s",
			code, stdout, stderr)
	}
	if !strings.Contains(stdout, "described.go") || !strings.Contains(stdout, "Phase misses Done") {
		t.Fatalf("finding should be reported at the post-rename path:\n%s", stdout)
	}
}

// TestCLIInterFlag: the interprocedural tier rides on the typed tier's
// module load, and -inter=false drops exactly its findings.
func TestCLIInterFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a typed module; skipped under -short")
	}
	dir := scratchModule(t)
	// A sim-critical package with a literal-seeded RNG: seedflow fires
	// only when the interprocedural tier runs.
	sim := `// Package sim stubs the core for the CLI test.
package sim

// RNG is a stub variate source.
//
//ctmsvet:shardowned
type RNG struct{ seed int64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Default is built from a literal seed: the planted violation.
func Default() *RNG { return NewRNG(1234) }
`
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "sim", "sim.go"), []byte(sim), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, "-root", dir, "-analyzers", "seedflow")
	if code != 1 || !strings.Contains(stdout, "literal seed") {
		t.Fatalf("exit %d, want 1 with a seedflow finding\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	code, stdout, _ = runCLI(t, "-root", dir, "-analyzers", "seedflow", "-inter=false")
	if code != 0 || stdout != "" {
		t.Fatalf("-inter=false should drop the interprocedural finding; exit %d\n%s", code, stdout)
	}
}
