// Command tapdump runs a scenario briefly with the TAP ring monitor and
// dumps what it saw: per-frame records (like IBM's Trace and Analysis
// Program) and the traffic breakdown into the paper's three size classes.
//
// Usage:
//
//	tapdump -case B -seconds 5 -n 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/ring"
	"repro/internal/sim"
)

func main() {
	var (
		testCase = flag.String("case", "B", "scenario: A, B or stock")
		seconds  = flag.Float64("seconds", 5, "simulated seconds to capture")
		n        = flag.Int("n", 40, "packet records to print")
		seed     = flag.Int64("seed", 0, "override seed")
		save     = flag.String("o", "", "save the capture to a .ctap trace file")
		load     = flag.String("i", "", "analyze an existing .ctap trace instead of running")
	)
	flag.Parse()

	if *load != "" {
		analyzeFile(*load)
		return
	}

	var cfg core.Config
	switch *testCase {
	case "A", "a":
		cfg = core.TestCaseA()
	case "B", "b":
		cfg = core.TestCaseB()
	case "stock":
		cfg = core.StockUnix(150_000)
	default:
		fmt.Fprintf(os.Stderr, "tapdump: unknown case %q\n", *testCase)
		os.Exit(2)
	}
	cfg.Duration = sim.Time(*seconds * float64(sim.Second))
	if *seed != 0 {
		cfg.Seed = *seed
	}

	res, tap, err := core.RunWithTAP(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapdump:", err)
		os.Exit(1)
	}

	entries := tap.Entries()
	fmt.Printf("captured %d frames in %v (dropped by capture limit: %d)\n\n",
		len(entries), time.Duration(cfg.Duration), tap.Dropped())

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapdump:", err)
			os.Exit(1)
		}
		if err := measure.WriteTrace(f, entries); err != nil {
			fmt.Fprintln(os.Stderr, "tapdump:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tapdump:", err)
			os.Exit(1)
		}
		fmt.Printf("saved trace to %s\n\n", *save)
	}

	fmt.Printf("%-14s %-4s %-4s %-6s %-6s %-6s %-6s %s\n",
		"time", "AC", "FC", "src", "dst", "len", "kind", "capture[:12]")
	for i, e := range entries {
		if i >= *n {
			fmt.Printf("... %d more\n", len(entries)-*n)
			break
		}
		kind := e.Kind.String()
		if e.Kind == ring.MAC {
			kind = e.MAC.String()
		}
		status := ""
		if e.Lost {
			status = "  ** LOST (ring purge)"
		}
		capture := e.Capture
		if len(capture) > 12 {
			capture = capture[:12]
		}
		fmt.Printf("%-14v 0x%02x 0x%02x %-6d %-6d %-6d %-6s % x%s\n",
			e.T, e.AC, e.FC, e.Src, e.Dst, e.Len, kind, capture, status)
	}

	st := tap.Stats()
	fmt.Printf("\ntraffic breakdown (the paper's three size classes + CTMSP):\n")
	var keys []string
	for k := range st.SizeClasses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %8d frames\n", k, st.SizeClasses[k])
	}
	fmt.Printf("\nring utilization: %.2f%%   MAC frames: %d   lost to purges: %d\n",
		100*tap.Utilization(4_000_000, cfg.Duration), st.MACFrames, st.LostFrames)

	_ = res
}

// analyzeFile loads a saved trace and prints the offline analysis.
func analyzeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapdump:", err)
		os.Exit(1)
	}
	defer f.Close()
	entries, err := measure.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapdump:", err)
		os.Exit(1)
	}
	a := measure.AnalyzeTrace(entries, 4_000_000)
	fmt.Printf("trace %s: %d frames over %v\n", path, a.Frames, a.Span)
	fmt.Printf("utilization %.2f%%   MAC %d   lost %d\n", 100*a.Utilization, a.MACFrames, a.LostFrames)
	var keys []string
	for k := range a.SizeClasses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-24s %8d frames\n", k, a.SizeClasses[k])
	}
	if ia := a.InterArrival; ia != nil {
		fmt.Printf("inter-arrival: mean %.0f µs, p99 %.0f µs, max %.0f µs, >10ms: %d, >100ms: %d\n",
			ia.MeanMicros, ia.P99Micros, ia.MaxMicros, ia.CountOver10ms, ia.CountOver100ms)
	}
}
