// Command ctmsplot regenerates the paper's figures as SVG files: it runs
// Test Cases A and B and writes fig5-2.svg, fig5-3.svg and fig5-4.svg
// (plus the remaining histograms with -all).
//
// Usage:
//
//	ctmsplot -o figures/ -minutes 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		out     = flag.String("o", ".", "output directory")
		minutes = flag.Float64("minutes", 4, "scenario duration in minutes")
		all     = flag.Bool("all", false, "also write histograms 1–5 for both cases")
		seed    = flag.Int64("seed", 0, "override seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	dur := sim.Time(*minutes * float64(sim.Minute))

	run := func(cfg core.Config) *core.Results {
		cfg.Duration = dur
		if *seed != 0 {
			cfg.Seed = *seed
		}
		r, err := core.Run(cfg)
		if err != nil {
			fatal(err)
		}
		return r
	}

	fmt.Println("running Test Case A…")
	ra := run(core.TestCaseA())
	fmt.Println("running Test Case B…")
	rb := run(core.TestCaseB())

	write := func(name string, h *stats.Histogram, title string) {
		svg := h.SVG(stats.SVGOptions{ClipHi: 45000, LogY: true, Title: title})
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (n=%d)\n", path, h.N())
	}

	write("fig5-2.svg", rb.Hists.H[measure.H6EntryToPreTransmit],
		"Figure 5-2: VCA handler entered to just prior to transmission (Test Case B)")
	write("fig5-3.svg", ra.Hists.H[measure.H7TxToRx],
		"Figure 5-3: transmitter to receiver times, Test Case A")
	write("fig5-4.svg", rb.Hists.H[measure.H7TxToRx],
		"Figure 5-4: transmitter to receiver times, Test Case B")

	if *all {
		for id := measure.H1InterIRQ; id < measure.NumHistograms; id++ {
			write(fmt.Sprintf("caseA-h%d.svg", int(id)+1), ra.Hists.H[id], "Test Case A: "+id.Label())
			write(fmt.Sprintf("caseB-h%d.svg", int(id)+1), rb.Hists.H[id], "Test Case B: "+id.Label())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ctmsplot:", err)
	os.Exit(1)
}
