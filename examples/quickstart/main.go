// Quickstart: run the paper's Test Case A for a couple of simulated
// minutes and print the headline result — Figure 5-3's transmitter-to-
// receiver latency histogram for 2000-byte CTMSP packets on a private,
// unloaded 4 Mbit Token Ring.
package main

import (
	"fmt"
	"log"
	"time"

	ctms "repro"
)

func main() {
	opts := ctms.TestCaseA()
	opts.Duration = 2 * time.Minute // the paper ran 117 minutes

	res, err := ctms.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Report)

	h7 := res.Histograms[ctms.HistTxToRx]
	fmt.Printf("\nFigure 5-3 — %s\n", h7.Name)
	fmt.Printf("  paper:    min 10740 µs, mean 10894 µs, 98%% within ±160 µs\n")
	fmt.Printf("  measured: min %.0f µs, mean %.0f µs, %.1f%% within ±160 µs\n\n",
		h7.MinMicros, h7.MeanMicros,
		100*h7.FractionWithin(h7.MeanMicros-160, h7.MeanMicros+160))
	fmt.Println(h7.Rendered)
}
