// toolcheck reproduces §5.2's measurement-tool validation: feed every
// instrument a source the logic analyzer proved perfect (the VCA's 12 ms
// interrupt line) and see what each tool reports. The PC/AT parallel-port
// rig shows its ±120 µs polling spread; the in-kernel pseudo-device shows
// its 122 µs clock quantization.
package main

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

func main() {
	const pulses = 5000

	sched := sim.NewScheduler()
	m := rtpc.NewMachine(sched, "host", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)

	la := measure.NewLogicAnalyzer(sched)
	pcat := measure.NewPCAT(sched, 42)
	pcat.Wire(measure.P1VCAIRQ, 0)
	pcat.Wire(measure.P2HandlerEntry, 1)
	pd := measure.NewPseudoDev(k)

	// A perfect 12 ms source, as the logic analyzer verified the VCA to
	// be (±500 ns, §5.2.2). The handler-entry point trails by a fixed
	// 40 µs so the pseudo-device has something it is allowed to see.
	for i := 0; i < pulses; i++ {
		n := uint32(i)
		at := sim.Time(i) * 12 * sim.Millisecond
		sched.At(at, "pulse", func() {
			la.Record(measure.P1VCAIRQ, n)
			pcat.Record(measure.P1VCAIRQ, n)
		})
		sched.At(at+40*sim.Microsecond, "entry", func() {
			la.Record(measure.P2HandlerEntry, n)
			pcat.Record(measure.P2HandlerEntry, n)
			pd.Record(measure.P2HandlerEntry, n)
		})
	}
	sched.RunUntil(pulses * 12 * sim.Millisecond)
	pcat.Stop()

	report := func(tool string, samples []measure.Sample) {
		h := measure.InterOccurrence(samples, 2, tool)
		fmt.Printf("%-16s n=%-6d mean=%9.1fµs  spread=[%0.f, %0.f]  sd=%.1fµs\n",
			tool, h.N(), h.Mean(), h.Min(), h.Max(), h.Stddev())
	}

	fmt.Println("inter-occurrence of a source the logic analyzer proved exact:")
	report("logic analyzer", la.Samples(measure.P1VCAIRQ))
	report("PC/AT rig", pcat.Samples(measure.P1VCAIRQ))
	report("pseudo-device", pd.Samples(measure.P2HandlerEntry))

	h := measure.InterOccurrence(pcat.Samples(measure.P1VCAIRQ), 2, "pcat")
	spread := (h.Max() - h.Min()) / 2
	fmt.Printf("\nPC/AT spread ±%.0f µs — the paper measured ±120 µs and derived a\n", spread)
	fmt.Printf("60 µs worst-case polling loop; our model uses %v.\n", measure.PCATLoopMax)
	fmt.Printf("pseudo-device quantization: %v system clock (and every call\n", measure.PseudoDevClockGranularity)
	fmt.Printf("perturbs the machine being measured by %v of CPU).\n", measure.PseudoDevRecordCost)

	// Show the raw PC/AT record stream decoding across clock rollovers.
	recs := pcat.Records()
	fmt.Printf("\nPC/AT raw records: %d (16-bit clock wraps every %v; the 50 Hz\n",
		len(recs), sim.Time(1<<16)*measure.PCATClockTick)
	fmt.Println("marker on channel 8 lets the decoder count rollovers)")
}
