// baseline reproduces the paper's opening experiment (§1): push 16 KB/s
// and then 150 KB/s through the UNCHANGED UNIX model — a user-level relay
// process over a TCP-class reliable transport — and compare with CTMSP at
// the same rates. 16 KB/s "worked extremely well"; 150 KB/s "failed
// completely"; CTMSP carries 150 KB/s cleanly.
package main

import (
	"fmt"
	"log"
	"time"

	ctms "repro"
)

func main() {
	const dur = 90 * time.Second

	type row struct {
		label string
		opts  ctms.Options
	}
	rows := []row{
		{"stock UNIX @ 16 KB/s", ctms.StockUnixAt(16_000)},
		{"stock UNIX @ 150 KB/s", ctms.StockUnixAt(150_000)},
		{"CTMSP      @ 166 KB/s", ctms.TestCaseB()},
	}

	fmt.Printf("%-24s %10s %10s %9s %12s %9s %9s\n",
		"path", "delivered", "glitches", "starved", "throughput", "tx CPU", "rx CPU")
	for _, r := range rows {
		r.opts.Duration = dur
		r.opts.Insertions = false
		res, err := ctms.Run(r.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %9.2f%% %10d %9s %9.1f KB/s %8.1f%% %8.1f%%\n",
			r.label, 100*res.DeliveredFraction(), res.Glitches,
			res.StarvedTime.Round(time.Millisecond),
			res.ThroughputBytesPerSec/1000, 100*res.TxCPUUtil, 100*res.RxCPUUtil)
	}

	fmt.Println("\nthe paper's conclusion: the UNIX device-to-device model (four CPU")
	fmt.Println("copies through a user process) cannot sustain CTMS rates; direct")
	fmt.Println("driver-to-driver transfer over CTMSP can.")
}
