// document plays a multimedia document — the §1 vision: CD-quality
// audio, DSP-compressed voice and motion video in one document. The
// document lives on an AFS file server; the CTMS server fetches it over
// the ring (the "file transfer" traffic class §5.3 observes), decodes the
// container, then streams every track over CTMSP to a presentation
// client, which verifies byte-exact, glitch-free playback.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/afs"
	"repro/internal/dsp"
	"repro/internal/inet"
	"repro/internal/kernel"
	"repro/internal/media"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

func main() {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())

	mk := func(name string, kind rtpc.MemoryKind) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 7)
		k := kernel.New(m)
		st := r.Attach(name)
		cfg := tradapter.DefaultConfig()
		cfg.DMABufferKind = kind
		drv := tradapter.New(k, st, cfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	afsK, afsDrv := mk("afs-fileserver", rtpc.SystemMemory)
	serverK, serverDrv := mk("ctms-server", rtpc.IOChannelMemory)
	clientK, clientDrv := mk("presentation", rtpc.SystemMemory)

	// Author the document: 2 seconds of CD audio, DSP-compressed voice
	// and 25 fps video. Total ≈224 KB/s.
	const dur = 2 * sim.Second
	cd, cdChunks := media.CDAudioTrack(1, dur, 12*sim.Millisecond)
	voice, voiceChunks, err := media.VoiceTrack(2, dur, 12*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	video, videoChunks := media.VideoTrack(3, 25, 40_000, dur, 10)
	doc := &media.Document{
		Tracks: []media.Track{cd, voice, video},
		Chunks: append(append(cdChunks, voiceChunks...), videoChunks...),
	}

	// Store the encoded document on the AFS file server.
	encoded, err := doc.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fileServer := afs.NewServer(inet.NewStack(afsK, afsDrv, inet.DefaultCosts()), afs.NewDisk(sched))
	fileServer.Put("/afs/itc/documents/demo.ctms", encoded)

	// The CTMS server is an AFS client: it fetches the document over the
	// ring, decodes it, then streams it.
	cacheMgr := afs.NewClient(inet.NewStack(serverK, serverDrv, inet.DefaultCosts()), afsDrv.Station().Addr())
	sched.RunUntil(200 * sim.Millisecond) // let the AFS hello land

	var stored *media.Document
	var client *media.Client
	cacheMgr.Fetch("/afs/itc/documents/demo.ctms", func(data []byte, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fetched %d bytes from AFS at t=%v\n", len(data), sched.Now())
		stored, err = media.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		client, err = media.NewClient(clientK, clientDrv, stored.Tracks, 250*sim.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		server, err := media.NewServer(serverK, serverDrv, clientDrv.Station().Addr(), stored, media.DefaultServerConfig())
		if err != nil {
			log.Fatal(err)
		}
		server.OnDone = func() {
			fmt.Printf("server: %d chunks, %d packets, %d KB pushed\n",
				server.Stats().ChunksSent, server.Stats().PacketsSent, server.Stats().BytesSent/1000)
		}
		server.Start()
	})
	sched.RunUntil(dur + 3*sim.Second)

	if stored == nil || client == nil {
		log.Fatal("AFS fetch never completed")
	}
	fmt.Printf("document: %d tracks, %d chunks, %d bytes in container, %.2f s\n",
		len(stored.Tracks), len(stored.Chunks), len(encoded),
		float64(stored.DurationMicros())/1e6)

	cs := client.Stats()
	fmt.Printf("client: %d packets, lost %d, dups %d\n\n", cs.Packets, cs.Lost, cs.Duplicates)

	fmt.Printf("%-6s %-12s %10s %9s %10s %8s\n", "track", "kind", "bytes", "glitches", "maxbuffer", "intact")
	ok := true
	for _, ts := range client.Finish(sched.Now()) {
		intact := bytes.Equal(client.TrackBytes(ts.Track), stored.TrackBytes(ts.Track))
		ok = ok && intact && ts.Glitches == 0
		fmt.Printf("%-6d %-12v %10d %9d %10d %8t\n",
			ts.Track, ts.Kind, ts.BytesReceived, ts.Glitches, ts.MaxBufferBytes, intact)
	}

	// Prove the voice track is real audio: decode the received µ-law
	// back to PCM through the G.711 decoder.
	pcm := dsp.MuLawDecodeAll(client.TrackBytes(2))
	fmt.Printf("\nvoice track decodes to %d PCM samples (%.2f s at 8 kHz)\n",
		len(pcm), float64(len(pcm))/8000)

	if ok {
		fmt.Println("\nall tracks byte-exact and glitch-free — the document played.")
	} else {
		fmt.Println("\nplayback impaired.")
	}
}
