// cdaudio streams Compact Disc quality audio — the paper's motivating
// workload: 44.1 K samples/s × 16 bits × 2 channels = 176.4 KB/s — over
// CTMSP on the loaded public ring, and reports whether the presentation
// device ever glitched and how much playout buffering it needed.
//
// The paper's §1 sets this up as the hard case ("no discernible glitches
// are heard") and §6 concludes that under 25 KB of buffering suffices for
// a 150 KB/s-class stream; CD audio is ~18% faster still.
package main

import (
	"fmt"
	"log"
	"time"

	ctms "repro"
)

func main() {
	opts := ctms.TestCaseB()
	opts.Name = "cd-audio"
	opts.Duration = 3 * time.Minute

	// CD audio at the VCA's 12 ms interrupt period: 176400 B/s × 12 ms
	// = 2116.8 B of samples per packet; round up and let the header ride
	// along (the stream rate is what the playout model consumes).
	opts.PacketBytes = 2132
	// Prebuffer enough to ride out the worst case §6 reports (40 ms)
	// plus one ring-insertion outage (≈130 ms).
	opts.PlayoutPrebuffer = 180 * time.Millisecond
	// Make an insertion happen during the run so the buffer sizing is
	// tested against the worst event the paper saw.
	opts.Insertions = false
	opts.ForceInsertionAt = 90 * time.Second

	res, err := ctms.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Report)
	fmt.Printf("\nCD-quality audio over CTMSP on the loaded campus ring:\n")
	fmt.Printf("  stream rate:        %.1f KB/s (CD audio is 176.4 KB/s)\n", res.ThroughputBytesPerSec/1000)
	fmt.Printf("  packets delivered:  %d of %d (%.4f%%)\n", res.Delivered, res.Sent, 100*res.DeliveredFraction())
	fmt.Printf("  lost to ring purge: %d (insertions: %d, purges: %d)\n", res.Lost, res.RingInsertions, res.RingPurges)
	fmt.Printf("  audible glitches:   %d (starved %v)\n", res.Glitches, res.StarvedTime)
	fmt.Printf("  playout buffer:     %d bytes high-water (paper: <25 KB suffices)\n", res.MaxBufferBytes)

	if res.Glitches == 0 {
		fmt.Println("\nno discernible glitches — the CTMS requirement is met.")
	} else {
		fmt.Println("\nglitches occurred — increase the prebuffer or investigate.")
	}
}
