package ctms

import (
	"fmt"
	"strings"
)

// enumTable maps one public string enum (Protocol, Tool, Load,
// StreamClass) onto its internal counterpart. All four mappings used to
// be hand-written switch blocks duplicated in both directions; the table
// keeps each pairing in one place and gives every unknown value the same
// error shape: the offending spelling plus the complete list of valid
// ones, in declaration order.
type enumTable[P ~string, C comparable] struct {
	kind string // noun for error messages: "protocol", "tool", ...
	def  P      // what the empty string means
	vals []enumPair[P, C]
}

type enumPair[P ~string, C comparable] struct {
	pub  P
	core C
}

// toCore resolves a public spelling ("" selects the default) to the
// internal value, or an error naming every valid spelling.
func (t enumTable[P, C]) toCore(p P) (C, error) {
	if p == "" {
		p = t.def
	}
	for _, e := range t.vals {
		if e.pub == p {
			return e.core, nil
		}
	}
	var zero C
	return zero, fmt.Errorf("ctms: unknown %s %q (valid: %s)", t.kind, string(p), t.valid())
}

// fromCore renders an internal value in its public spelling. Unknown
// internal values fall back to the default rather than inventing one.
func (t enumTable[P, C]) fromCore(c C) P {
	for _, e := range t.vals {
		if e.core == c {
			return e.pub
		}
	}
	return t.def
}

func (t enumTable[P, C]) valid() string {
	names := make([]string, len(t.vals))
	for i, e := range t.vals {
		names[i] = fmt.Sprintf("%q", string(e.pub))
	}
	return strings.Join(names, ", ")
}
