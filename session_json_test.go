package ctms_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	ctms "repro"
)

// populationScenario is the canonical population session the golden file
// pins: every knob set, including a custom codec mix and diurnal curve.
func populationScenario() ctms.SessionOptions {
	return ctms.SessionOptions{
		Name:           "evening-load",
		Seed:           1991,
		Duration:       12 * time.Second,
		BackgroundUtil: 0.05,
		Population: &ctms.PopulationSpec{
			ArrivalsPerSec: 16,
			ZipfSkew:       1.1,
			Titles:         32,
			ChurnHalfLife:  3 * time.Second,
			Classes: []ctms.CodecClass{
				{Name: "playback", PacketBytes: 500, Interval: 12 * time.Millisecond,
					Class: ctms.ClassStandard, Weight: 0.7},
				{Name: "voice", PacketBytes: 200, Interval: 12 * time.Millisecond,
					Class: ctms.ClassInteractive, Weight: 0.2},
				{Name: "prefetch", PacketBytes: 1000, Interval: 24 * time.Millisecond,
					Class: ctms.ClassBackground, Weight: 0.1},
			},
			Diurnal:         []float64{0.5, 1.0, 1.8, 1.2},
			StormAt:         6 * time.Second,
			StormInsertions: 2,
			MaxStreams:      5000,
		},
	}
}

// TestSessionJSONGolden pins the session scenario format: the canonical
// population scenario marshals to exactly testdata/population.golden.json
// and that file parses back to the same struct. Regenerate with
// UPDATE_GOLDEN=1 go test.
func TestSessionJSONGolden(t *testing.T) {
	opts := populationScenario()
	got, err := json.MarshalIndent(opts, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "population.golden.json")
	if updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("session scenario format drifted from the golden file (UPDATE_GOLDEN=1 to accept):\n--- got\n%s--- want\n%s", got, want)
	}

	var back ctms.SessionOptions
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, opts) {
		t.Fatalf("golden does not round-trip:\n got %+v\nwant %+v", back, opts)
	}
}

func TestSessionJSONRejectsUnknownFields(t *testing.T) {
	var o ctms.SessionOptions
	cases := []string{
		`{"durration": "2m"}`,
		`{"population": {"arrivals_per_second": 4}}`,
		`{"population": {"arrivals_per_sec": 4, "classes": [{"pakcet_bytes": 500}]}}`,
	}
	for _, doc := range cases {
		if err := json.Unmarshal([]byte(doc), &o); err == nil {
			t.Errorf("unknown field accepted: %s", doc)
		}
	}
	ok := `{"duration": "5s", "population": {"arrivals_per_sec": 4, "zipf_skew": 1.0}}`
	if err := json.Unmarshal([]byte(ok), &o); err != nil {
		t.Fatal(err)
	}
	if o.Population == nil || o.Population.ArrivalsPerSec != 4 {
		t.Fatalf("population not parsed: %+v", o.Population)
	}
}

func TestLoadSessionScenarios(t *testing.T) {
	doc, err := json.Marshal([]ctms.SessionOptions{populationScenario()})
	if err != nil {
		t.Fatal(err)
	}
	many, err := ctms.LoadSessionScenarios(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 1 || !reflect.DeepEqual(many[0], populationScenario()) {
		t.Fatalf("scenario array: %+v", many)
	}

	// An unknown class spelling must fail validation with the valid
	// spellings listed — the enum-style error the scenario format
	// promises.
	bad := populationScenario()
	bad.Population.Classes[0].Class = "platinum"
	badDoc, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctms.LoadSessionScenarios(badDoc)
	if err == nil {
		t.Fatal("unknown class spelling must fail the file")
	}
	for _, want := range []string{"platinum", "background", "standard", "interactive"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not spell out %q", err, want)
		}
	}

	// Range mistakes fail the whole file too.
	neg := populationScenario()
	neg.Population.ZipfSkew = -1
	negDoc, err := json.Marshal([]ctms.SessionOptions{populationScenario(), neg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctms.LoadSessionScenarios(negDoc); err == nil {
		t.Fatal("invalid scenario in an array must fail the whole file")
	}
	if _, err := ctms.LoadSessionScenarios([]byte(`[]`)); err == nil {
		t.Fatal("empty scenario file must fail")
	}
}

// TestSessionPopulationEndToEnd drives the public API the way a scenario
// runner would: a population session runs, produces churn accounting and
// latency quantiles, and repeats bit-identically.
func TestSessionPopulationEndToEnd(t *testing.T) {
	run := func() *ctms.SessionResult {
		opts := ctms.SessionOptions{
			Name:           "pop-e2e",
			Seed:           7,
			Duration:       6 * time.Second,
			BackgroundUtil: 0.05,
			Population: &ctms.PopulationSpec{
				ArrivalsPerSec: 8,
				ZipfSkew:       1.2,
				Titles:         16,
				ChurnHalfLife:  2 * time.Second,
			},
		}
		s, err := ctms.NewSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Admitted == 0 || res.Departed == 0 {
		t.Fatalf("no churn: %d admitted, %d departed", res.Admitted, res.Departed)
	}
	if res.PlayoutLatencyP99 <= 0 || res.PlayoutLatencyP999 < res.PlayoutLatencyP99 {
		t.Fatalf("latency quantiles: p99=%v p999=%v", res.PlayoutLatencyP99, res.PlayoutLatencyP999)
	}
	arrived := 0
	for _, st := range res.Streams {
		if st.Arrived {
			arrived++
		}
	}
	if arrived != len(res.Streams) {
		t.Fatalf("%d of %d streams marked arrived", arrived, len(res.Streams))
	}
	if again := run(); again.Report != res.Report {
		t.Fatal("population session not deterministic across runs")
	}
}
